"""MAC and IPv4 address value types.

Small immutable wrappers around the integer representation.  They are
hashable (usable as FDB / flow-table keys), ordered (usable in sorted
MIB walks) and render in the conventional textual forms.
"""

from __future__ import annotations

import re
from functools import total_ordering

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")
_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


@total_ordering
class MACAddress:
    """A 48-bit IEEE 802 MAC address."""

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | bytes | MACAddress") -> None:
        if isinstance(value, MACAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < 1 << 48:
                raise ValueError(f"MAC integer out of range: {value:#x}")
            self._value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise ValueError(f"MAC bytes must be 6 long, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise ValueError(f"malformed MAC address: {value!r}")
            self._value = int(value.replace("-", ":").replace(":", ""), 16)
        else:
            raise TypeError(f"cannot build MACAddress from {type(value).__name__}")

    @classmethod
    def from_int(cls, value: int) -> "MACAddress":
        return cls(value)

    @property
    def packed(self) -> bytes:
        """The 6-byte network-order representation."""
        return self._value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True for group addresses (I/G bit set), including broadcast."""
        return bool(self._value >> 40 & 0x01)

    @property
    def is_unicast(self) -> bool:
        return not self.is_multicast

    @property
    def is_locally_administered(self) -> bool:
        return bool(self._value >> 41 & 0x01)

    @property
    def oui(self) -> int:
        """The 24-bit organisationally unique identifier."""
        return self._value >> 24

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MACAddress") -> bool:
        if isinstance(other, MACAddress):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("MACAddress", self._value))

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MACAddress('{self}')"


BROADCAST_MAC = MACAddress("ff:ff:ff:ff:ff:ff")


@total_ordering
class IPv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | bytes | IPv4Address") -> None:
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < 1 << 32:
                raise ValueError(f"IPv4 integer out of range: {value:#x}")
            self._value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 4:
                raise ValueError(f"IPv4 bytes must be 4 long, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            match = _IPV4_RE.match(value)
            if not match:
                raise ValueError(f"malformed IPv4 address: {value!r}")
            octets = [int(group) for group in match.groups()]
            if any(octet > 255 for octet in octets):
                raise ValueError(f"IPv4 octet out of range: {value!r}")
            self._value = (
                octets[0] << 24 | octets[1] << 16 | octets[2] << 8 | octets[3]
            )
        else:
            raise TypeError(f"cannot build IPv4Address from {type(value).__name__}")

    @property
    def packed(self) -> bytes:
        """The 4-byte network-order representation."""
        return self._value.to_bytes(4, "big")

    @property
    def is_multicast(self) -> bool:
        return 0xE0000000 <= self._value <= 0xEFFFFFFF

    @property
    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFF

    @property
    def is_unspecified(self) -> bool:
        return self._value == 0

    @property
    def is_loopback(self) -> bool:
        return self._value >> 24 == 127

    @property
    def is_private(self) -> bool:
        """RFC 1918 private space."""
        return (
            self._value >> 24 == 10
            or self._value >> 20 == 0xAC1  # 172.16.0.0/12
            or self._value >> 16 == 0xC0A8  # 192.168.0.0/16
        )

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("IPv4Address", self._value))

    def __add__(self, offset: int) -> "IPv4Address":
        if not isinstance(offset, int):
            return NotImplemented
        return IPv4Address((self._value + offset) & 0xFFFFFFFF)

    def __str__(self) -> str:
        return ".".join(str(self._value >> shift & 0xFF) for shift in (24, 16, 8, 0))

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"


class IPv4Network:
    """An IPv4 prefix, e.g. ``10.0.0.0/24``.

    Used for subnet-scoped policies (DMZ tenants) and masked OpenFlow
    matches.
    """

    __slots__ = ("network", "prefix_len")

    def __init__(self, spec: "str | IPv4Network", prefix_len: "int | None" = None) -> None:
        if isinstance(spec, IPv4Network):
            self.network = spec.network
            self.prefix_len = spec.prefix_len
            return
        if prefix_len is None:
            if "/" not in spec:
                raise ValueError(f"network spec needs a /prefix: {spec!r}")
            addr_part, _, len_part = spec.partition("/")
            prefix_len = int(len_part)
        else:
            addr_part = spec
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        base = int(IPv4Address(addr_part))
        self.prefix_len = prefix_len
        self.network = IPv4Address(base & self.netmask_int())

    def netmask_int(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF

    @property
    def netmask(self) -> IPv4Address:
        return IPv4Address(self.netmask_int())

    @property
    def broadcast(self) -> IPv4Address:
        return IPv4Address(int(self.network) | (~self.netmask_int() & 0xFFFFFFFF))

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefix_len)

    def __contains__(self, addr: "IPv4Address | str") -> bool:
        value = int(IPv4Address(addr))
        return value & self.netmask_int() == int(self.network)

    def hosts(self):
        """Iterate usable host addresses (excludes network/broadcast for /30 and shorter)."""
        start = int(self.network)
        end = int(self.broadcast)
        if self.prefix_len >= 31:
            for value in range(start, end + 1):
                yield IPv4Address(value)
        else:
            for value in range(start + 1, end):
                yield IPv4Address(value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Network):
            return (
                self.network == other.network and self.prefix_len == other.prefix_len
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("IPv4Network", self.network, self.prefix_len))

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network('{self}')"
