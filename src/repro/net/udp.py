"""UDP datagrams (RFC 768) with pseudo-header checksums."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.addresses import IPv4Address
from repro.net.checksum import pseudo_header_checksum
from repro.net.errors import PacketDecodeError
from repro.net.ipv4 import IPPROTO_UDP

_HEADER = struct.Struct("!HHHH")


@dataclass
class UdpDatagram:
    """A UDP datagram; checksum requires src/dst IPs (pseudo header)."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        for name, port in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")
        self.payload = bytes(self.payload)

    @property
    def length(self) -> int:
        return 8 + len(self.payload)

    def to_bytes(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> bytes:
        unchecksummed = (
            _HEADER.pack(self.src_port, self.dst_port, self.length, 0) + self.payload
        )
        checksum = pseudo_header_checksum(
            src_ip.packed, dst_ip.packed, IPPROTO_UDP, unchecksummed
        )
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        return (
            _HEADER.pack(self.src_port, self.dst_port, self.length, checksum)
            + self.payload
        )

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        src_ip: "IPv4Address | None" = None,
        dst_ip: "IPv4Address | None" = None,
    ) -> "UdpDatagram":
        if len(data) < 8:
            raise PacketDecodeError("udp", f"datagram too short: {len(data)} bytes")
        src_port, dst_port, length, checksum = _HEADER.unpack_from(data)
        if length < 8 or length > len(data):
            raise PacketDecodeError("udp", f"bad length field {length}")
        if checksum and src_ip is not None and dst_ip is not None:
            computed = pseudo_header_checksum(
                src_ip.packed, dst_ip.packed, IPPROTO_UDP, data[:length]
            )
            if computed not in (0, 0xFFFF):
                raise PacketDecodeError("udp", "checksum mismatch")
        return cls(src_port=src_port, dst_port=dst_port, payload=data[8:length])

    def __str__(self) -> str:
        return f"UDP {self.src_port} > {self.dst_port} len {len(self.payload)}"
