"""Minimal DNS (RFC 1035) — queries and A-record answers.

The parental-control use case blocks web sites per user; blocking at
DNS-lookup time is one of its enforcement points, so the simulator's
hosts really resolve names through these messages.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.addresses import IPv4Address
from repro.net.errors import PacketDecodeError

DNS_TYPE_A = 1
DNS_CLASS_IN = 1
DNS_RCODE_OK = 0
DNS_RCODE_NXDOMAIN = 3
DNS_RCODE_REFUSED = 5

_HEADER = struct.Struct("!HHHHHH")


def encode_name(name: str) -> bytes:
    """Encode a dotted name into DNS label format."""
    if name.endswith("."):
        name = name[:-1]
    encoded = bytearray()
    if name:
        for label in name.split("."):
            raw = label.encode("ascii")
            if not 1 <= len(raw) <= 63:
                raise ValueError(f"bad DNS label: {label!r}")
            encoded.append(len(raw))
            encoded += raw
    encoded.append(0)
    return bytes(encoded)


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a label-format name (no compression) starting at *offset*.

    Returns (name, next_offset).
    """
    labels = []
    while True:
        if offset >= len(data):
            raise PacketDecodeError("dns", "truncated name")
        length = data[offset]
        if length & 0xC0:
            raise PacketDecodeError("dns", "compressed names not supported")
        offset += 1
        if length == 0:
            break
        if offset + length > len(data):
            raise PacketDecodeError("dns", "truncated label")
        labels.append(data[offset : offset + length].decode("ascii"))
        offset += length
    return ".".join(labels), offset


@dataclass
class DnsQuestion:
    """A single DNS question (name, qtype, qclass)."""

    name: str
    qtype: int = DNS_TYPE_A
    qclass: int = DNS_CLASS_IN

    def to_bytes(self) -> bytes:
        return encode_name(self.name) + struct.pack("!HH", self.qtype, self.qclass)

    @classmethod
    def from_bytes(cls, data: bytes, offset: int) -> tuple["DnsQuestion", int]:
        name, offset = decode_name(data, offset)
        if offset + 4 > len(data):
            raise PacketDecodeError("dns", "truncated question")
        qtype, qclass = struct.unpack_from("!HH", data, offset)
        return cls(name=name, qtype=qtype, qclass=qclass), offset + 4


@dataclass
class DnsResourceRecord:
    """A resource record; only A records carry a typed ``address``."""

    name: str
    rtype: int = DNS_TYPE_A
    rclass: int = DNS_CLASS_IN
    ttl: int = 300
    rdata: bytes = b""

    @classmethod
    def a_record(cls, name: str, address: IPv4Address, ttl: int = 300) -> "DnsResourceRecord":
        return cls(name=name, rtype=DNS_TYPE_A, ttl=ttl, rdata=IPv4Address(address).packed)

    @property
    def address(self) -> IPv4Address:
        if self.rtype != DNS_TYPE_A or len(self.rdata) != 4:
            raise ValueError("not an A record")
        return IPv4Address(self.rdata)

    def to_bytes(self) -> bytes:
        return (
            encode_name(self.name)
            + struct.pack("!HHIH", self.rtype, self.rclass, self.ttl, len(self.rdata))
            + self.rdata
        )

    @classmethod
    def from_bytes(cls, data: bytes, offset: int) -> tuple["DnsResourceRecord", int]:
        name, offset = decode_name(data, offset)
        if offset + 10 > len(data):
            raise PacketDecodeError("dns", "truncated resource record")
        rtype, rclass, ttl, rdlength = struct.unpack_from("!HHIH", data, offset)
        offset += 10
        if offset + rdlength > len(data):
            raise PacketDecodeError("dns", "truncated rdata")
        rdata = data[offset : offset + rdlength]
        return cls(name=name, rtype=rtype, rclass=rclass, ttl=ttl, rdata=rdata), offset + rdlength


@dataclass
class DnsMessage:
    """A DNS message: header + questions + answers."""

    transaction_id: int
    is_response: bool = False
    rcode: int = DNS_RCODE_OK
    recursion_desired: bool = True
    questions: list[DnsQuestion] = field(default_factory=list)
    answers: list[DnsResourceRecord] = field(default_factory=list)

    @classmethod
    def query(cls, transaction_id: int, name: str) -> "DnsMessage":
        return cls(
            transaction_id=transaction_id, questions=[DnsQuestion(name=name)]
        )

    def make_response(
        self, answers: "list[DnsResourceRecord] | None" = None, rcode: int = DNS_RCODE_OK
    ) -> "DnsMessage":
        return DnsMessage(
            transaction_id=self.transaction_id,
            is_response=True,
            rcode=rcode,
            recursion_desired=self.recursion_desired,
            questions=list(self.questions),
            answers=list(answers or []),
        )

    def to_bytes(self) -> bytes:
        flags = 0
        if self.is_response:
            flags |= 0x8000
        if self.recursion_desired:
            flags |= 0x0100
        flags |= self.rcode & 0x000F
        header = _HEADER.pack(
            self.transaction_id, flags, len(self.questions), len(self.answers), 0, 0
        )
        body = b"".join(q.to_bytes() for q in self.questions)
        body += b"".join(rr.to_bytes() for rr in self.answers)
        return header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "DnsMessage":
        if len(data) < 12:
            raise PacketDecodeError("dns", f"message too short: {len(data)} bytes")
        transaction_id, flags, qdcount, ancount, _nscount, _arcount = _HEADER.unpack_from(
            data
        )
        offset = 12
        questions = []
        for _ in range(qdcount):
            question, offset = DnsQuestion.from_bytes(data, offset)
            questions.append(question)
        answers = []
        for _ in range(ancount):
            answer, offset = DnsResourceRecord.from_bytes(data, offset)
            answers.append(answer)
        return cls(
            transaction_id=transaction_id,
            is_response=bool(flags & 0x8000),
            rcode=flags & 0x000F,
            recursion_desired=bool(flags & 0x0100),
            questions=questions,
            answers=answers,
        )

    def __str__(self) -> str:
        kind = "response" if self.is_response else "query"
        names = ",".join(q.name for q in self.questions)
        return f"DNS {kind} id {self.transaction_id} [{names}] rcode {self.rcode}"
