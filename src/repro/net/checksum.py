"""RFC 1071 Internet checksum.

Shared by IPv4, ICMP, UDP and TCP.  The implementation folds 16-bit
one's-complement sums exactly as the RFC specifies, so checksums in our
serialised headers verify against any external tool that might inspect
captures exported by the simulator.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement checksum of *data*.

    Odd-length buffers are zero-padded on the right, per RFC 1071.
    Returns the checksum as an integer in [0, 0xFFFF].
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
    # Fold carries back in until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if *data* (which embeds its own checksum field) sums to zero."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF


def pseudo_header_checksum(
    src_ip_packed: bytes, dst_ip_packed: bytes, protocol: int, payload: bytes
) -> int:
    """Checksum over the IPv4 pseudo header plus *payload* (TCP/UDP)."""
    pseudo = (
        src_ip_packed
        + dst_ip_packed
        + bytes([0, protocol])
        + len(payload).to_bytes(2, "big")
    )
    return internet_checksum(pseudo + payload)
