"""The HARMLESS Manager: end-to-end migration orchestration.

Reproduces the paper's workflow: "the manager configures the legacy
switch, then instantiates HARMLESS-S4.  Finally, it installs the
corresponding flow rules into SS_1 and connects SS_2 to the SDN
controller."  Discovery and configuration go through the NAPALM-style
driver (which speaks SNMP to the device), so the manager is vendor-
neutral exactly as the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.controller.core import Controller, Datapath
from repro.legacy.switch import LegacySwitch
from repro.mgmt.base import ConfigOp, DriverError, NetworkDriver
from repro.netsim.link import Link
from repro.netsim.simulator import Simulator
from repro.softswitch.costmodel import DatapathCostModel, ESWITCH_COST_MODEL
from repro.core.portmap import DEFAULT_VLAN_BASE, PortVlanMap
from repro.core.s4 import SS1_TRUNK_PORT, HarmlessS4

#: Default trunk interconnect speed (legacy switch <-> server NIC).
DEFAULT_TRUNK_BANDWIDTH_BPS = 10_000_000_000
#: Two metres of fibre/DAC between switch and server.
DEFAULT_TRUNK_DELAY_S = 1e-6


class HarmlessError(Exception):
    """Deployment failure (with rollback already attempted)."""


@dataclass
class HarmlessDeployment:
    """Handle for one migrated legacy switch."""

    legacy_switch: LegacySwitch
    driver: NetworkDriver
    s4: HarmlessS4
    port_map: PortVlanMap
    trunk_port: int
    trunk_link: Link
    datapath: Optional[Datapath] = None
    vendor_config: str = ""
    active: bool = True
    log: list[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.datapath is None:
            controller_line = "  controller: not connected"
        elif self.datapath.dpid is None:
            controller_line = "  controller: handshake in progress"
        else:
            controller_line = f"  controller dpid: {self.datapath.dpid:#x}"
        lines = [
            f"HARMLESS deployment over {self.legacy_switch.name} "
            f"({self.driver.vendor})",
            f"  managed access ports: {self.port_map.ports}",
            f"  trunk: legacy port {self.trunk_port} <-> SS_1 port {SS1_TRUNK_PORT}",
            f"  port->vlan: {self.port_map.describe()}",
            controller_line,
        ]
        return "\n".join(lines)

    def teardown(self) -> None:
        """Undo the migration: restore the legacy VLAN config."""
        if not self.active:
            return
        self.driver.rollback()
        self.active = False
        self.log.append("teardown: legacy configuration restored")


class HarmlessManager:
    """Drives migrations; one manager can migrate many switches."""

    def __init__(
        self,
        sim: Simulator,
        controller: "Controller | None" = None,
        vlan_base: int = DEFAULT_VLAN_BASE,
        cost_model: DatapathCostModel = ESWITCH_COST_MODEL,
        trunk_bandwidth_bps: float = DEFAULT_TRUNK_BANDWIDTH_BPS,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.vlan_base = vlan_base
        self.cost_model = cost_model
        self.trunk_bandwidth_bps = trunk_bandwidth_bps
        self._next_dpid = 0x100
        self.deployments: list[HarmlessDeployment] = []

    # ------------------------------------------------------------ workflow

    def migrate(
        self,
        legacy_switch: LegacySwitch,
        driver: NetworkDriver,
        trunk_port: int,
        access_ports: "list[int] | None" = None,
        controller_latency_s: float = 50e-6,
    ) -> HarmlessDeployment:
        """Migrate *legacy_switch* to SDN through *driver*.

        *trunk_port* is the legacy port cabled to the HARMLESS server.
        *access_ports* defaults to every other wired port.  On any
        failure the legacy configuration is rolled back before raising.
        """
        log: list[str] = []

        # 1. Discover the device.
        facts = driver.get_facts()
        interfaces = driver.get_interfaces()
        log.append(
            f"discovered {facts['hostname']} ({driver.vendor}), "
            f"{len(interfaces)} interfaces"
        )
        all_ports = sorted(info["port"] for info in interfaces.values())
        if trunk_port not in all_ports:
            raise HarmlessError(f"trunk port {trunk_port} does not exist on device")
        if access_ports is None:
            access_ports = [
                info["port"]
                for info in interfaces.values()
                if info["port"] != trunk_port and info["is_up"]
            ]
        access_ports = sorted(set(access_ports))
        if not access_ports:
            raise HarmlessError("no access ports to manage")
        if trunk_port in access_ports:
            raise HarmlessError("trunk port cannot also be an access port")

        # 2. Plan the VLAN scheme, avoiding ids already on the device.
        reserved = set(driver.get_vlans())
        port_map = PortVlanMap.allocate(
            access_ports, base=self.vlan_base, reserved=reserved
        )
        log.append(f"allocated VLANs: {port_map.describe()}")

        # 3. Push the config through the vendor driver (candidate+commit
        #    so we get NAPALM's preview and rollback behaviour).
        ops = self._config_ops(port_map, trunk_port)
        vendor_config = driver.render_config(ops)
        driver.load_merge_candidate(vendor_config)
        try:
            driver.commit_config()
        except Exception as exc:
            raise HarmlessError(f"legacy switch rejected config: {exc}") from exc
        log.append(f"pushed {len(ops)} config ops to {facts['hostname']}")

        try:
            # 4. Instantiate HARMLESS-S4 and wire the trunk.
            dpid = self._next_dpid
            self._next_dpid += 1
            s4 = HarmlessS4(
                self.sim,
                f"harmless-{legacy_switch.name}",
                access_ports=access_ports,
                datapath_id=dpid,
                cost_model=self.cost_model,
            )
            trunk_link = Link(
                legacy_switch.port(trunk_port),
                s4.trunk_port,
                bandwidth_bps=self.trunk_bandwidth_bps,
                propagation_delay_s=DEFAULT_TRUNK_DELAY_S,
                name=f"{legacy_switch.name}-trunk",
            )
            log.append(
                f"S4 instantiated: dpid={dpid:#x}, "
                f"{len(access_ports)} patch ports, trunk wired"
            )

            # 5. Install the translator program into SS_1.
            rules = s4.install_translator(port_map)
            log.append(f"installed {len(rules.flow_mods)} rules into SS_1")

            # 6. Connect SS_2 to the SDN controller.
            datapath = None
            if self.controller is not None:
                datapath = self.controller.connect(
                    s4.ss2, latency_s=controller_latency_s
                )
                log.append("SS_2 connected to SDN controller")
        except Exception as exc:
            driver.rollback()
            raise HarmlessError(f"deployment failed, rolled back: {exc}") from exc

        deployment = HarmlessDeployment(
            legacy_switch=legacy_switch,
            driver=driver,
            s4=s4,
            port_map=port_map,
            trunk_port=trunk_port,
            trunk_link=trunk_link,
            datapath=datapath,
            vendor_config=vendor_config,
            log=log,
        )
        self.deployments.append(deployment)
        return deployment

    @staticmethod
    def _config_ops(port_map: PortVlanMap, trunk_port: int) -> "list[ConfigOp]":
        """The vendor-neutral ops implementing tagging + hairpinning."""
        ops: list[ConfigOp] = []
        for access_port, vlan in port_map:
            ops.append(
                ConfigOp(
                    kind="vlan", vlan_id=vlan, name=f"harmless-p{access_port}"
                )
            )
            ops.append(ConfigOp(kind="access", vlan_id=vlan, port=access_port))
        ops.append(
            ConfigOp(
                kind="trunk",
                port=trunk_port,
                allowed_vlans=tuple(port_map.vlans),
            )
        )
        return ops

    # --------------------------------------------------------- validation

    def verify_deployment(self, deployment: HarmlessDeployment) -> list[str]:
        """Read back device state and check the scheme is in place.

        Returns a list of problems (empty = healthy).
        """
        problems: list[str] = []
        vlans = deployment.driver.get_vlans()
        for access_port, vlan in deployment.port_map:
            view = vlans.get(vlan)
            if view is None:
                problems.append(f"VLAN {vlan} missing on device")
                continue
            if view.untagged != [access_port]:
                problems.append(
                    f"VLAN {vlan}: expected untagged [{access_port}], "
                    f"got {view.untagged}"
                )
            if deployment.trunk_port not in view.tagged:
                problems.append(f"VLAN {vlan}: trunk not a tagged member")
        if deployment.s4.translator_rules is None:
            problems.append("SS_1 has no translator rules")
        return problems
