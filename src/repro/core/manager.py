"""The HARMLESS Manager: end-to-end migration orchestration.

Reproduces the paper's workflow: "the manager configures the legacy
switch, then instantiates HARMLESS-S4.  Finally, it installs the
corresponding flow rules into SS_1 and connects SS_2 to the SDN
controller."  Discovery and configuration go through the NAPALM-style
driver (which speaks SNMP to the device), so the manager is vendor-
neutral exactly as the paper claims.

Two scales of orchestration live here:

* :class:`HarmlessManager` — migrates one switch at a time (the
  paper's single-device workflow);
* :class:`HarmlessFleet` — executes a :class:`repro.core.migration
  .MigrationPlan` against a real :class:`repro.fabric.topology.Fabric`:
  wave by wave, mid-simulation, with un-migrated legacy switches
  forwarding throughout and all-pairs host reachability verified after
  every wave (the hybrid operation regime the ONF migration brief
  describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.controller.core import Controller, Datapath
from repro.legacy.switch import LegacySwitch
from repro.mgmt.base import ConfigOp, NetworkDriver
from repro.netsim.link import DEFAULT_QUEUE_FRAMES, Link
from repro.netsim.simulator import Simulator
from repro.softswitch.costmodel import DatapathCostModel, ESWITCH_COST_MODEL
from repro.core.migration import (
    MigrationPlan,
    MigrationPlanner,
    MigrationStrategy,
    MigrationWave,
    SwitchSite,
)
from repro.core.portmap import DEFAULT_VLAN_BASE, PortVlanMap
from repro.core.s4 import SS1_TRUNK_PORT, HarmlessS4

if TYPE_CHECKING:  # pragma: no cover - layering: fabric imports nothing from core
    from repro.fabric.topology import Fabric

#: Default trunk interconnect speed (legacy switch <-> server NIC).
DEFAULT_TRUNK_BANDWIDTH_BPS = 10_000_000_000
#: Two metres of fibre/DAC between switch and server.
DEFAULT_TRUNK_DELAY_S = 1e-6


class HarmlessError(Exception):
    """Deployment failure (with rollback already attempted)."""


@dataclass
class HarmlessDeployment:
    """Handle for one migrated legacy switch."""

    legacy_switch: LegacySwitch
    driver: NetworkDriver
    s4: HarmlessS4
    port_map: PortVlanMap
    trunk_port: int
    trunk_link: Link
    datapath: Optional[Datapath] = None
    vendor_config: str = ""
    active: bool = True
    log: list[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.datapath is None:
            controller_line = "  controller: not connected"
        elif self.datapath.dpid is None:
            controller_line = "  controller: handshake in progress"
        else:
            controller_line = f"  controller dpid: {self.datapath.dpid:#x}"
        lines = [
            f"HARMLESS deployment over {self.legacy_switch.name} "
            f"({self.driver.vendor})",
            f"  managed access ports: {self.port_map.ports}",
            f"  trunk: legacy port {self.trunk_port} <-> SS_1 port {SS1_TRUNK_PORT}",
            f"  port->vlan: {self.port_map.describe()}",
            controller_line,
        ]
        return "\n".join(lines)

    def teardown(self) -> None:
        """Undo the migration: restore the legacy VLAN config."""
        if not self.active:
            return
        self.driver.rollback()
        self.active = False
        self.log.append("teardown: legacy configuration restored")


class HarmlessManager:
    """Drives migrations; one manager can migrate many switches."""

    def __init__(
        self,
        sim: Simulator,
        controller: "Controller | None" = None,
        vlan_base: int = DEFAULT_VLAN_BASE,
        cost_model: DatapathCostModel = ESWITCH_COST_MODEL,
        trunk_bandwidth_bps: float = DEFAULT_TRUNK_BANDWIDTH_BPS,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.vlan_base = vlan_base
        self.cost_model = cost_model
        self.trunk_bandwidth_bps = trunk_bandwidth_bps
        #: Drop-tail depth of the S4 trunk and patch links (burst-heavy
        #: fabric benches raise it so coalesced bursts are not tail-dropped).
        self.queue_frames = queue_frames
        self._next_dpid = 0x100
        self.deployments: list[HarmlessDeployment] = []

    # ------------------------------------------------------------ workflow

    def migrate(
        self,
        legacy_switch: LegacySwitch,
        driver: NetworkDriver,
        trunk_port: int,
        access_ports: "list[int] | None" = None,
        controller_latency_s: float = 50e-6,
    ) -> HarmlessDeployment:
        """Migrate *legacy_switch* to SDN through *driver*.

        *trunk_port* is the legacy port cabled to the HARMLESS server.
        *access_ports* defaults to every other wired port.  On any
        failure the legacy configuration is rolled back before raising.
        """
        log: list[str] = []

        # 1. Discover the device.
        facts = driver.get_facts()
        interfaces = driver.get_interfaces()
        log.append(
            f"discovered {facts['hostname']} ({driver.vendor}), "
            f"{len(interfaces)} interfaces"
        )
        all_ports = sorted(info["port"] for info in interfaces.values())
        if trunk_port not in all_ports:
            raise HarmlessError(f"trunk port {trunk_port} does not exist on device")
        if access_ports is None:
            access_ports = [
                info["port"]
                for info in interfaces.values()
                if info["port"] != trunk_port and info["is_up"]
            ]
        access_ports = sorted(set(access_ports))
        if not access_ports:
            raise HarmlessError("no access ports to manage")
        if trunk_port in access_ports:
            raise HarmlessError("trunk port cannot also be an access port")

        # 2. Plan the VLAN scheme, avoiding ids already on the device.
        reserved = set(driver.get_vlans())
        port_map = PortVlanMap.allocate(
            access_ports, base=self.vlan_base, reserved=reserved
        )
        log.append(f"allocated VLANs: {port_map.describe()}")

        # 3. Push the config through the vendor driver (candidate+commit
        #    so we get NAPALM's preview and rollback behaviour).
        ops = self._config_ops(port_map, trunk_port)
        vendor_config = driver.render_config(ops)
        driver.load_merge_candidate(vendor_config)
        try:
            driver.commit_config()
        except Exception as exc:
            raise HarmlessError(f"legacy switch rejected config: {exc}") from exc
        log.append(f"pushed {len(ops)} config ops to {facts['hostname']}")

        try:
            # 4. Instantiate HARMLESS-S4 and wire the trunk.
            dpid = self._next_dpid
            self._next_dpid += 1
            s4 = HarmlessS4(
                self.sim,
                f"harmless-{legacy_switch.name}",
                access_ports=access_ports,
                datapath_id=dpid,
                cost_model=self.cost_model,
                queue_frames=self.queue_frames,
            )
            trunk_link = Link(
                legacy_switch.port(trunk_port),
                s4.trunk_port,
                bandwidth_bps=self.trunk_bandwidth_bps,
                propagation_delay_s=DEFAULT_TRUNK_DELAY_S,
                queue_frames=self.queue_frames,
                name=f"{legacy_switch.name}-trunk",
            )
            log.append(
                f"S4 instantiated: dpid={dpid:#x}, "
                f"{len(access_ports)} patch ports, trunk wired"
            )

            # 5. Install the translator program into SS_1.
            rules = s4.install_translator(port_map)
            log.append(f"installed {len(rules.flow_mods)} rules into SS_1")

            # 6. Connect SS_2 to the SDN controller.
            datapath = None
            if self.controller is not None:
                datapath = self.controller.connect(
                    s4.ss2, latency_s=controller_latency_s
                )
                log.append("SS_2 connected to SDN controller")
        except Exception as exc:
            driver.rollback()
            raise HarmlessError(f"deployment failed, rolled back: {exc}") from exc

        deployment = HarmlessDeployment(
            legacy_switch=legacy_switch,
            driver=driver,
            s4=s4,
            port_map=port_map,
            trunk_port=trunk_port,
            trunk_link=trunk_link,
            datapath=datapath,
            vendor_config=vendor_config,
            log=log,
        )
        self.deployments.append(deployment)
        return deployment

    @staticmethod
    def _config_ops(port_map: PortVlanMap, trunk_port: int) -> "list[ConfigOp]":
        """The vendor-neutral ops implementing tagging + hairpinning."""
        ops: list[ConfigOp] = []
        for access_port, vlan in port_map:
            ops.append(
                ConfigOp(
                    kind="vlan", vlan_id=vlan, name=f"harmless-p{access_port}"
                )
            )
            ops.append(ConfigOp(kind="access", vlan_id=vlan, port=access_port))
        ops.append(
            ConfigOp(
                kind="trunk",
                port=trunk_port,
                allowed_vlans=tuple(port_map.vlans),
            )
        )
        return ops

    # --------------------------------------------------------- validation

    def verify_deployment(self, deployment: HarmlessDeployment) -> list[str]:
        """Read back device state and check the scheme is in place.

        Returns a list of problems (empty = healthy).
        """
        problems: list[str] = []
        vlans = deployment.driver.get_vlans()
        for access_port, vlan in deployment.port_map:
            view = vlans.get(vlan)
            if view is None:
                problems.append(f"VLAN {vlan} missing on device")
                continue
            if view.untagged != [access_port]:
                problems.append(
                    f"VLAN {vlan}: expected untagged [{access_port}], "
                    f"got {view.untagged}"
                )
            if deployment.trunk_port not in view.tagged:
                problems.append(f"VLAN {vlan}: trunk not a tagged member")
        if deployment.s4.translator_rules is None:
            problems.append("SS_1 has no translator rules")
        return problems


# --------------------------------------------------------------------------
# Network-wide rollout: executing migration plans against a live fabric
# --------------------------------------------------------------------------


@dataclass
class ReachabilityReport:
    """Outcome of one all-pairs reachability sweep."""

    pairs: int
    answered: int
    lost: "list[tuple[str, str]]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.lost

    @property
    def loss_rate(self) -> float:
        return len(self.lost) / self.pairs if self.pairs else 0.0

    def describe(self) -> str:
        if self.ok:
            return f"reachability OK ({self.answered}/{self.pairs} pairs)"
        sample = ", ".join(f"{a}->{b}" for a, b in self.lost[:5])
        more = "" if len(self.lost) <= 5 else f" (+{len(self.lost) - 5} more)"
        return (
            f"reachability FAILED: {len(self.lost)}/{self.pairs} pairs lost "
            f"[{sample}{more}]"
        )


@dataclass
class ResilienceReport:
    """Convergence scoring for one injected fault (or its recovery).

    Produced by :meth:`HarmlessFleet.await_reconvergence`: repeated
    short reachability sweeps run until the first fully clean sweep,
    so ``convergence_s`` is the simulated time from the measurement
    start to the end of that sweep (granularity = one sweep window)
    and ``probes_lost`` counts every failed probe pair along the way.
    """

    event: str
    started_at: float
    converged_at: "float | None"
    sweeps: int
    probes_lost: int
    pairs_per_sweep: int

    @property
    def converged(self) -> bool:
        return self.converged_at is not None

    @property
    def convergence_s(self) -> float:
        """Time to the first clean sweep (inf when the deadline hit)."""
        if self.converged_at is None:
            return float("inf")
        return self.converged_at - self.started_at

    def describe(self) -> str:
        if not self.converged:
            return (
                f"{self.event}: NOT converged after {self.sweeps} sweep(s), "
                f"{self.probes_lost} probe(s) lost"
            )
        return (
            f"{self.event}: reconverged in {self.convergence_s * 1e3:.1f} ms "
            f"({self.sweeps} sweep(s), {self.probes_lost} probe(s) lost, "
            f"{self.pairs_per_sweep} pairs/sweep)"
        )


@dataclass
class FleetWaveReport:
    """One executed wave: what migrated and whether the fabric held."""

    index: int
    sites: "list[str]"
    capex_usd: float
    downtime_s: float
    sdn_ports_after: int
    deployments: "list[HarmlessDeployment]"
    reachability: "ReachabilityReport | None" = None

    def describe(self) -> str:
        names = ",".join(self.sites)
        line = (
            f"wave {self.index}: migrated [{names}] "
            f"capex ${self.capex_usd:,.0f} -> {self.sdn_ports_after} SDN ports"
        )
        if self.reachability is not None:
            line += f"; {self.reachability.describe()}"
        return line


class HarmlessFleet:
    """Network-wide HARMLESS rollout over a multi-switch fabric.

    Where :class:`repro.core.migration.MigrationPlanner` only *accounts*
    waves over abstract sites, the fleet executes them: each wave
    migrates its fabric switches mid-simulation through one shared
    :class:`HarmlessManager` (one SDN controller, one growing set of S4
    deployments), while un-migrated switches keep forwarding as plain
    802.1Q bridges.  Inter-switch links are re-homed onto the migrated
    datapaths by the migration itself — the uplink port becomes a
    managed access port whose traffic hairpins through SS_1/SS_2, so a
    frame crossing N migrated hops traverses N software datapaths.

    After each wave the fleet runs an all-pairs ping sweep across every
    fabric host, proving the hybrid (part-legacy, part-SDN) network
    stayed connected — the property the incremental strategy is sold on.
    """

    def __init__(
        self,
        fabric: "Fabric",
        controller: "Controller | None" = None,
        wave_size: int = 2,
        vlan_base: int = DEFAULT_VLAN_BASE,
        cost_model: DatapathCostModel = ESWITCH_COST_MODEL,
        trunk_bandwidth_bps: float = DEFAULT_TRUNK_BANDWIDTH_BPS,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
        controller_latency_s: float = 50e-6,
        settle_s: float = 0.05,
        verify_window_s: float = 2.0,
        owned_sites: "set[str] | None" = None,
    ) -> None:
        self.fabric = fabric
        #: When the fabric is one shard of a sharded simulation
        #: (:mod:`repro.fabric.partition`), the shard's fleet replica
        #: executes the *same* wave plan as every other shard — the
        #: collective settle/verify runs must stay in lockstep — but
        #: only actually migrates (and sweeps from) the sites this
        #: shard owns.  ``None`` (the default) owns everything.
        self.owned_sites = owned_sites
        if controller is None:
            # Late import: apps sit above core in the layering.
            from repro.apps.learning_switch import LearningSwitchApp

            controller = Controller(fabric.sim)
            controller.add_app(LearningSwitchApp())
        self.controller = controller
        self.manager = HarmlessManager(
            fabric.sim,
            controller=controller,
            vlan_base=vlan_base,
            cost_model=cost_model,
            trunk_bandwidth_bps=trunk_bandwidth_bps,
            queue_frames=queue_frames,
        )
        self.controller_latency_s = controller_latency_s
        self.settle_s = settle_s
        self.verify_window_s = verify_window_s
        #: Site order is the fabric's insertion order (edge tier first).
        self._site_order = list(fabric.sites)
        self.plan: MigrationPlan = MigrationPlanner(
            [self._planning_site(name) for name in self._site_order]
        ).plan(MigrationStrategy.HARMLESS_WAVES, wave_size=wave_size)
        self.reports: "list[FleetWaveReport]" = []
        self.deployments: "dict[str, HarmlessDeployment]" = {}

    def _planning_site(self, name: str) -> SwitchSite:
        site = self.fabric.sites[name]
        return SwitchSite(
            name=name,
            ports=len(site.switch.ports),
            ports_in_use=len(site.access_ports),
        )

    # ------------------------------------------------------------- state

    @property
    def migrated_sites(self) -> "list[str]":
        return [name for report in self.reports for name in report.sites]

    @property
    def pending_waves(self) -> "list[MigrationWave]":
        return self.plan.waves[len(self.reports):]

    @property
    def complete(self) -> bool:
        return not self.pending_waves

    # ---------------------------------------------------------- execution

    def migrate_next_wave(self, verify: bool = True) -> FleetWaveReport:
        """Execute the next planned wave; returns its report."""
        if self.complete:
            raise HarmlessError("migration plan already fully executed")
        wave = self.plan.waves[len(self.reports)]
        deployments = []
        try:
            for planned in wave.sites:
                if (
                    self.owned_sites is not None
                    and planned.name not in self.owned_sites
                ):
                    continue  # a peer shard's replica migrates this one
                site = self.fabric.sites[planned.name]
                deployment = self.manager.migrate(
                    site.switch,
                    site.driver,
                    trunk_port=site.trunk_port,
                    access_ports=site.access_ports,
                    controller_latency_s=self.controller_latency_s,
                )
                deployments.append(deployment)
                self.deployments[planned.name] = deployment
        except Exception as exc:
            # Unwind the wave's partial progress so it can be retried:
            # restore each migrated site's legacy config, unwire its S4
            # trunk (freeing the reserved port) and forget the
            # deployment — the fleet's state then matches the fabric's.
            for deployment in reversed(deployments):
                deployment.teardown()
                deployment.trunk_link.disconnect()
                self.manager.deployments.remove(deployment)
                self.deployments = {
                    name: kept
                    for name, kept in self.deployments.items()
                    if kept is not deployment
                }
            raise HarmlessError(
                f"wave {wave.index} failed and was rolled back: {exc}"
            ) from exc
        # Let the OpenFlow handshakes and table-miss installs complete
        # before any verification traffic hits the new datapaths.
        self.fabric.sim.run(until=self.fabric.sim.now + self.settle_s)
        report = FleetWaveReport(
            index=wave.index,
            sites=[planned.name for planned in wave.sites],
            capex_usd=wave.capex_usd,
            downtime_s=wave.downtime_s,
            sdn_ports_after=wave.sdn_ports_after,
            deployments=deployments,
            reachability=self.verify_reachability() if verify else None,
        )
        self.reports.append(report)
        return report

    def migrate_all(
        self, verify: bool = True, strict: bool = False
    ) -> "list[FleetWaveReport]":
        """Execute every remaining wave in plan order.

        With *strict* a failed post-wave reachability sweep raises
        :class:`HarmlessError` instead of carrying on.
        """
        while not self.complete:
            report = self.migrate_next_wave(verify=verify)
            if strict and report.reachability is not None and not report.reachability.ok:
                raise HarmlessError(
                    f"wave {report.index} broke the fabric: "
                    f"{report.reachability.describe()}"
                )
        return self.reports

    # --------------------------------------------------------- validation

    def _owned_hosts(self) -> list:
        """Hosts on this fleet's owned sites (all hosts when unsharded).

        Owned hosts must be real simulator hosts — a slimmed sharded
        replica (:func:`repro.fabric.topology.slim_replica_build`)
        stubs only *foreign* sites, so a stub here means the replica
        was built with the wrong foreign set.  Foreign stubs are fine
        as sweep *destinations* (probes cross the boundary and the
        owning shard's real host answers); they just never source.
        """
        owned = [
            host
            for name, site in self.fabric.sites.items()
            if self.owned_sites is None or name in self.owned_sites
            for host in site.hosts
        ]
        for host in owned:
            if getattr(host, "is_stub", False):
                raise HarmlessError(
                    f"owned host {host.name} is a slimmed stub — the replica "
                    f"was built with its own sites in the foreign set"
                )
        return owned

    def verify_reachability(
        self,
        hosts: "list | None" = None,
        sources: "list | None" = None,
        window_s: "float | None" = None,
    ) -> ReachabilityReport:
        """All-pairs ping sweep across the fabric's hosts.

        Every ordered (src, dst) host pair sends one echo request; the
        simulation then runs for ``verify_window_s`` so replies (and
        ping timeouts) resolve.  Works at any point of the rollout —
        before, between and after waves — because legacy bridging and
        migrated S4 hops interoperate on the same untagged frames.

        *sources* restricts which hosts send probes (destinations stay
        *hosts*); a sharded fleet replica defaults it to the hosts it
        owns, so the ordered pairs swept across all shards partition
        the full all-pairs set exactly once.  *window_s* overrides the
        fleet-wide ``verify_window_s`` for this sweep — probes still
        pending when a short window closes count as lost, which is the
        conservative reading resilience scoring wants.
        """
        sim = self.fabric.sim
        hosts = list(hosts if hosts is not None else self.fabric.hosts)
        if sources is None:
            owned = set(map(id, self._owned_hosts()))
            sources = [host for host in hosts if id(host) in owned]
        probes = []
        for src in sources:
            for dst in hosts:
                if src is dst:
                    continue
                probes.append((src, dst, src.ping(dst.ip)))
        window = self.verify_window_s if window_s is None else window_s
        sim.run(until=sim.now + window)
        lost = [
            (src.name, dst.name)
            for src, dst, result in probes
            if result.lost
        ]
        return ReachabilityReport(
            pairs=len(probes), answered=len(probes) - len(lost), lost=lost
        )

    def await_reconvergence(
        self,
        event: str = "fault",
        window_s: float = 0.25,
        deadline_s: float = 10.0,
        hosts: "list | None" = None,
        sources: "list | None" = None,
    ) -> ResilienceReport:
        """Measure time-to-reconverge after a fault, by repeated sweeps.

        Runs back-to-back reachability sweeps of *window_s* simulated
        seconds each until the first sweep where every probe pair
        answers, or until *deadline_s* of simulated time has elapsed.
        The returned report's ``convergence_s`` is the time from this
        call to the end of the first clean sweep (so the measurement
        has sweep-window granularity and slightly over-reports — call
        it right when the fault or its repair is injected), and
        ``probes_lost`` totals the failed pairs of every sweep on the
        way, a frames-lost proxy at probe granularity.

        Deterministic: all timing is simulated time, so identical
        scenarios score identically on any machine.
        """
        if window_s <= 0:
            raise ValueError("sweep window must be positive")
        sim = self.fabric.sim
        started_at = sim.now
        sweeps = 0
        probes_lost = 0
        pairs = 0
        converged_at = None
        while sim.now - started_at < deadline_s - 1e-12:
            report = self.verify_reachability(
                hosts=hosts, sources=sources, window_s=window_s
            )
            sweeps += 1
            pairs = report.pairs
            if report.ok:
                converged_at = sim.now
                break
            probes_lost += len(report.lost)
        return ResilienceReport(
            event=event,
            started_at=started_at,
            converged_at=converged_at,
            sweeps=sweeps,
            probes_lost=probes_lost,
            pairs_per_sweep=pairs,
        )

    def verify_deployments(self) -> "dict[str, list[str]]":
        """Per-site read-back validation; only unhealthy sites appear."""
        problems = {}
        for name, deployment in self.deployments.items():
            site_problems = self.manager.verify_deployment(deployment)
            if site_problems:
                problems[name] = site_problems
        return problems

    # ------------------------------------------------------------- output

    def describe(self) -> str:
        lines = [
            f"HARMLESS fleet over fabric '{self.fabric.kind}': "
            f"{len(self.migrated_sites)}/{len(self._site_order)} sites migrated, "
            f"{len(self.reports)}/{self.plan.num_waves} waves executed"
        ]
        lines.extend(f"  {report.describe()}" for report in self.reports)
        for wave in self.pending_waves:
            names = ",".join(site.name for site in wave.sites)
            lines.append(f"  wave {wave.index}: pending [{names}]")
        return "\n".join(lines)
