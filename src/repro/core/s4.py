"""HARMLESS-S4: the composite software device (SS_1 + SS_2).

Two software-switch instances on one server, joined by "as many patch
ports as the number of managed access ports of the legacy device".
SS_2's port numbers mirror the legacy access-port numbers, which is the
whole point: a controller program written for an N-port switch sees an
N-port switch.

Patch links are ideal (no bandwidth limit); they carry the small fixed
cost the cost model assigns to crossing switch instances in shared
memory.
"""

from __future__ import annotations

from repro.netsim.link import DEFAULT_QUEUE_FRAMES, Link
from repro.netsim.simulator import Simulator
from repro.openflow.messages import parse_message
from repro.softswitch.costmodel import DatapathCostModel, ESWITCH_COST_MODEL
from repro.softswitch.datapath import SoftSwitch
from repro.core.portmap import PortVlanMap
from repro.core.translator import (
    TranslatorRules,
    generate_translator_rules,
    verify_translator_rules,
)

#: SS_1's trunk-facing port number (clear of small patch numbers).
SS1_TRUNK_PORT = 1000


class HarmlessS4:
    """SS_1 (translator) + SS_2 (controller-facing OF switch)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        access_ports: "list[int]",
        datapath_id: int,
        cost_model: DatapathCostModel = ESWITCH_COST_MODEL,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
    ) -> None:
        if not access_ports:
            raise ValueError("HARMLESS-S4 needs at least one managed access port")
        self.sim = sim
        self.name = name
        self.access_ports = sorted(set(access_ports))
        self.cost_model = cost_model
        # SS_1: translator. One table suffices; dpid is internal-only.
        self.ss1 = SoftSwitch(
            sim,
            f"{name}-ss1",
            datapath_id=(datapath_id << 8) | 0x01,
            num_tables=1,
            cost_model=cost_model,
        )
        # SS_2: the controller-managed switch.
        self.ss2 = SoftSwitch(
            sim,
            f"{name}-ss2",
            datapath_id=datapath_id,
            num_tables=4,
            cost_model=cost_model,
        )
        self.trunk_port = self.ss1.add_port(SS1_TRUNK_PORT, name=f"{name}-trunk")
        self.patch_port_of: dict[int, int] = {}
        patch_delay_s = cost_model.patch_ns * 1e-9
        for access_port in self.access_ports:
            ss1_port = self.ss1.add_port(access_port)
            ss2_port = self.ss2.add_port(access_port)
            Link(
                ss1_port,
                ss2_port,
                bandwidth_bps=None,
                propagation_delay_s=patch_delay_s,
                queue_frames=queue_frames,
                name=f"{name}-patch{access_port}",
            )
            self.patch_port_of[access_port] = access_port
        self.translator_rules: "TranslatorRules | None" = None

    def install_translator(self, port_map: PortVlanMap) -> TranslatorRules:
        """Generate, verify and push SS_1's rules for *port_map*."""
        if sorted(port_map.ports) != self.access_ports:
            raise ValueError(
                f"port map covers {port_map.ports}, S4 manages {self.access_ports}"
            )
        rules = generate_translator_rules(
            port_map, trunk_port=SS1_TRUNK_PORT, patch_port_of=self.patch_port_of
        )
        check = verify_translator_rules(rules)
        if not check.ok:
            raise ValueError(f"translator rules failed verification: {check.problems}")
        for flow_mod in rules.flow_mods:
            errors = self.ss1.handle_message(flow_mod.to_bytes())
            if errors:
                raise RuntimeError(
                    f"SS_1 rejected translator rule: {parse_message(errors[0])}"
                )
        self.translator_rules = rules
        return rules

    def dump(self) -> str:
        """Readable state of both instances (used by the FIG1 bench)."""
        sections = [f"### HARMLESS-S4 '{self.name}' ###"]
        if self.translator_rules is not None:
            sections.append(self.translator_rules.describe())
        sections.append(self.ss1.dump_pipeline())
        sections.append(self.ss2.dump_pipeline())
        return "\n".join(sections)
