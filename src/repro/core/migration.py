"""Incremental migration planning across an enterprise network.

The paper's introduction contrasts migration strategies (per the ONF
solution brief): incremental migration interferes least with daily
operation but managing heterogeneous networks is painful; a flag-day
forklift avoids heterogeneity but costs capex and downtime.  HARMLESS
waves give incremental SDN coverage at legacy prices.  This module
models all three over a set of switch sites and accounts capex,
per-wave service interruption, and SDN-coverage progression.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.costmodel.catalogue import (
    COTS_OF_SWITCHES,
    MAX_NICS_PER_SERVER,
    NIC_SKU,
    SERVER_SKU,
)


class MigrationStrategy(enum.Enum):
    """How the enterprise reaches full SDN."""

    #: Replace everything with COTS OpenFlow switches in one flag-day event.
    FLAG_DAY = "flag-day"
    #: Replace switches with COTS hardware wave by wave.
    INCREMENTAL_COTS = "incremental-cots"
    #: HARMLESS: keep legacy switches, add servers wave by wave.
    HARMLESS_WAVES = "harmless-waves"


@dataclass(frozen=True)
class SwitchSite:
    """One legacy switch in the enterprise network."""

    name: str
    ports: int = 24
    ports_in_use: int = 20
    #: Seconds of service interruption to re-cable / reconfigure this
    #: site (swap-out is much slower than adding a trunk).
    swap_downtime_s: float = 1800.0
    harmless_downtime_s: float = 60.0


@dataclass
class MigrationWave:
    """One step of the plan."""

    index: int
    sites: list[SwitchSite]
    capex_usd: float
    downtime_s: float
    sdn_ports_after: int


@dataclass
class MigrationPlan:
    """The full schedule plus its aggregate metrics."""

    strategy: MigrationStrategy
    waves: list[MigrationWave] = field(default_factory=list)

    @property
    def total_capex(self) -> float:
        return sum(wave.capex_usd for wave in self.waves)

    @property
    def total_downtime_s(self) -> float:
        return sum(wave.downtime_s for wave in self.waves)

    @property
    def max_single_downtime_s(self) -> float:
        return max((wave.downtime_s for wave in self.waves), default=0.0)

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    def coverage_curve(self) -> "list[tuple[int, int]]":
        """(wave index, SDN ports enabled so far) progression."""
        return [(wave.index, wave.sdn_ports_after) for wave in self.waves]

    def describe(self) -> str:
        lines = [f"migration plan: {self.strategy.value}, {self.num_waves} wave(s)"]
        for wave in self.waves:
            names = ",".join(site.name for site in wave.sites)
            lines.append(
                f"  wave {wave.index}: [{names}] capex ${wave.capex_usd:,.0f} "
                f"downtime {wave.downtime_s:.0f}s "
                f"-> {wave.sdn_ports_after} SDN ports"
            )
        lines.append(
            f"  total: ${self.total_capex:,.0f}, "
            f"downtime {self.total_downtime_s:.0f}s"
        )
        return "\n".join(lines)


class MigrationPlanner:
    """Builds :class:`MigrationPlan` objects for a site list."""

    def __init__(self, sites: "list[SwitchSite]") -> None:
        if not sites:
            raise ValueError("no sites to migrate")
        self.sites = list(sites)

    # ----------------------------------------------------------- pricing

    @staticmethod
    def _cots_switch_price(ports: int) -> float:
        size = 24 if ports <= 24 else 48
        return COTS_OF_SWITCHES[size].price_usd

    @staticmethod
    def _harmless_wave_price(num_switches: int) -> float:
        """Servers + NICs to host S4 instances for *num_switches* sites."""
        nics = math.ceil(num_switches / 2)
        servers = max(1, math.ceil(nics / MAX_NICS_PER_SERVER))
        return servers * SERVER_SKU.price_usd + nics * NIC_SKU.price_usd

    # ------------------------------------------------------------- plans

    def plan(
        self, strategy: MigrationStrategy, wave_size: int = 2
    ) -> MigrationPlan:
        if wave_size < 1:
            raise ValueError("wave size must be positive")
        if strategy is MigrationStrategy.FLAG_DAY:
            waves = [self.sites]
        else:
            waves = [
                self.sites[start : start + wave_size]
                for start in range(0, len(self.sites), wave_size)
            ]

        plan = MigrationPlan(strategy=strategy)
        sdn_ports = 0
        for index, wave_sites in enumerate(waves, start=1):
            sdn_ports += sum(site.ports_in_use for site in wave_sites)
            if strategy is MigrationStrategy.HARMLESS_WAVES:
                capex = self._harmless_wave_price(len(wave_sites))
                downtime = sum(site.harmless_downtime_s for site in wave_sites)
            else:
                capex = sum(
                    self._cots_switch_price(site.ports) for site in wave_sites
                )
                downtime = sum(site.swap_downtime_s for site in wave_sites)
            plan.waves.append(
                MigrationWave(
                    index=index,
                    sites=list(wave_sites),
                    capex_usd=capex,
                    downtime_s=downtime,
                    sdn_ports_after=sdn_ports,
                )
            )
        return plan

    def compare_all(self, wave_size: int = 2) -> "dict[str, MigrationPlan]":
        """All three strategies over the same sites."""
        return {
            strategy.value: self.plan(strategy, wave_size=wave_size)
            for strategy in MigrationStrategy
        }
