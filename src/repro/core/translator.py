"""SS_1, the OpenFlow Translator Component: rule generation + checking.

The translator is "an adaptation layer ... to dispatch packets to and
from the patch ports based on the used VLAN ids" (Fig. 1).  Its flow
table has exactly two rule shapes:

* trunk -> patch:  match (in_port=trunk, vlan_vid=V(p)) ->
  pop_vlan, output patch port of p
* patch -> trunk:  match (in_port=patch port of p) ->
  push_vlan, set vlan_vid V(p), output trunk

``verify_translator_rules`` proves a rule list implements the port map
exactly (no missing port, no stray rule, bijective dispatch) — the
property data-plane transparency rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.openflow.actions import (
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
)
from repro.openflow.consts import OFPVID_PRESENT
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod
from repro.core.portmap import PortVlanMap

#: Priority for the translator's two rule families (anything above the
#: implicit drop works; a single level keeps the table trivially
#: non-overlapping).
TRANSLATOR_PRIORITY = 100


@dataclass
class TranslatorRules:
    """The generated SS_1 program, plus the context that produced it."""

    port_map: PortVlanMap
    trunk_port: int
    patch_port_of: dict[int, int] = field(default_factory=dict)
    flow_mods: list[FlowMod] = field(default_factory=list)

    def describe(self) -> str:
        """Fig. 1-style rendering of the flow table of SS_1."""
        lines = ["Flow table of SS_1:"]
        for access_port, vlan in self.port_map:
            patch = self.patch_port_of[access_port]
            lines.append(
                f"  in_port={self.trunk_port}(trunk), vlan={vlan}"
                f"  -> pop_vlan, output:{patch} (patch {access_port})"
            )
        for access_port, vlan in self.port_map:
            patch = self.patch_port_of[access_port]
            lines.append(
                f"  in_port={patch}(patch {access_port})"
                f"  -> push_vlan {vlan}, output:{self.trunk_port} (trunk)"
            )
        return "\n".join(lines)


def generate_translator_rules(
    port_map: PortVlanMap,
    trunk_port: int,
    patch_port_of: "dict[int, int]",
) -> TranslatorRules:
    """Build SS_1's flow mods for *port_map*.

    *patch_port_of* maps each managed access port to SS_1's patch-port
    number leading to SS_2.
    """
    missing = [port for port in port_map.ports if port not in patch_port_of]
    if missing:
        raise ValueError(f"no patch port assigned for access ports {missing}")
    used = [patch_port_of[port] for port in port_map.ports]
    if len(set(used)) != len(used):
        raise ValueError("patch ports must be distinct per access port")
    if trunk_port in used:
        raise ValueError("trunk port collides with a patch port")

    flow_mods: list[FlowMod] = []
    for access_port, vlan in port_map:
        patch = patch_port_of[access_port]
        # Trunk -> patch: strip the tag, dispatch by VLAN.
        flow_mods.append(
            FlowMod(
                match=Match(in_port=trunk_port, vlan_vid=OFPVID_PRESENT | vlan),
                instructions=[
                    ApplyActions(
                        actions=(PopVlanAction(), OutputAction(port=patch))
                    )
                ],
                priority=TRANSLATOR_PRIORITY,
            )
        )
        # Patch -> trunk: tag with the port's VLAN, hairpin back.
        flow_mods.append(
            FlowMod(
                match=Match(in_port=patch),
                instructions=[
                    ApplyActions(
                        actions=(
                            PushVlanAction(),
                            SetFieldAction.vlan_vid(vlan),
                            OutputAction(port=trunk_port),
                        )
                    )
                ],
                priority=TRANSLATOR_PRIORITY,
            )
        )
    return TranslatorRules(
        port_map=port_map,
        trunk_port=trunk_port,
        patch_port_of=dict(patch_port_of),
        flow_mods=flow_mods,
    )


@dataclass
class TranslatorCheck:
    """Result of verifying a translator rule list."""

    ok: bool
    problems: list[str] = field(default_factory=list)


def verify_translator_rules(rules: TranslatorRules) -> TranslatorCheck:
    """Statically prove *rules* implement the port map bijectively.

    Checks: every managed port has exactly one trunk->patch and one
    patch->trunk rule; VLAN ids and patch ports line up with the map;
    no extra rules exist.
    """
    problems: list[str] = []
    rules.port_map.validate()

    trunk_to_patch: dict[int, int] = {}  # vlan -> patch port
    patch_to_trunk: dict[int, int] = {}  # patch port -> vlan

    for flow_mod in rules.flow_mods:
        in_port_constraint = flow_mod.match.get("in_port")
        if in_port_constraint is None:
            problems.append(f"rule without in_port match: {flow_mod.match.describe()}")
            continue
        in_port = in_port_constraint.value
        actions = []
        for instruction in flow_mod.instructions:
            if isinstance(instruction, ApplyActions):
                actions.extend(instruction.actions)
        if in_port == rules.trunk_port:
            vlan_constraint = flow_mod.match.get("vlan_vid")
            if vlan_constraint is None:
                problems.append("trunk rule without vlan match")
                continue
            vlan = vlan_constraint.value & 0xFFF
            pops = [a for a in actions if isinstance(a, PopVlanAction)]
            outputs = [a for a in actions if isinstance(a, OutputAction)]
            if len(pops) != 1 or len(outputs) != 1:
                problems.append(f"trunk rule for vlan {vlan} malformed")
                continue
            if vlan in trunk_to_patch:
                problems.append(f"duplicate trunk rule for vlan {vlan}")
            trunk_to_patch[vlan] = outputs[0].port
        else:
            pushes = [a for a in actions if isinstance(a, PushVlanAction)]
            sets = [
                a
                for a in actions
                if isinstance(a, SetFieldAction) and a.field == "vlan_vid"
            ]
            outputs = [a for a in actions if isinstance(a, OutputAction)]
            if len(pushes) != 1 or len(sets) != 1 or len(outputs) != 1:
                problems.append(f"patch rule for in_port {in_port} malformed")
                continue
            if outputs[0].port != rules.trunk_port:
                problems.append(
                    f"patch rule for in_port {in_port} does not output to trunk"
                )
            if in_port in patch_to_trunk:
                problems.append(f"duplicate patch rule for in_port {in_port}")
            patch_to_trunk[in_port] = sets[0].value & 0xFFF

    for access_port, vlan in rules.port_map:
        expected_patch = rules.patch_port_of[access_port]
        if trunk_to_patch.get(vlan) != expected_patch:
            problems.append(
                f"vlan {vlan} (port {access_port}) does not dispatch to patch "
                f"{expected_patch} (got {trunk_to_patch.get(vlan)})"
            )
        if patch_to_trunk.get(expected_patch) != vlan:
            problems.append(
                f"patch {expected_patch} (port {access_port}) does not tag "
                f"{vlan} (got {patch_to_trunk.get(expected_patch)})"
            )
    extra_vlans = set(trunk_to_patch) - set(rules.port_map.vlans)
    if extra_vlans:
        problems.append(f"stray trunk rules for vlans {sorted(extra_vlans)}")
    expected_patches = {rules.patch_port_of[p] for p in rules.port_map.ports}
    extra_patches = set(patch_to_trunk) - expected_patches
    if extra_patches:
        problems.append(f"stray patch rules for ports {sorted(extra_patches)}")

    return TranslatorCheck(ok=not problems, problems=problems)
