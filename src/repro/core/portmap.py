"""The access-port <-> VLAN-id bijection at the heart of HARMLESS.

"The legacy switch is configured to tag each packet with a unique VLAN
id that identifies the access port it was received from."  This module
owns that mapping: allocation (skipping VLANs already used on the
switch), validation, both-way lookup, and serialisation so a deployment
can be audited or resumed.
"""

from __future__ import annotations

import json
from typing import Iterator, Optional

from repro.legacy.config import MAX_VLAN

#: Default first VLAN id handed out (matches the paper's example: the
#: ports of the demo switch get 101, 102, ...).
DEFAULT_VLAN_BASE = 101


class PortVlanMap:
    """An immutable-ish bijection between access ports and VLAN ids."""

    def __init__(self, mapping: "dict[int, int] | None" = None) -> None:
        self._port_to_vlan: dict[int, int] = {}
        self._vlan_to_port: dict[int, int] = {}
        for port, vlan in (mapping or {}).items():
            self.assign(port, vlan)

    @classmethod
    def allocate(
        cls,
        ports: "list[int]",
        base: int = DEFAULT_VLAN_BASE,
        reserved: "set[int] | None" = None,
    ) -> "PortVlanMap":
        """Densely allocate VLAN ids >= *base* to *ports*, skipping
        *reserved* ids (VLANs already configured on the switch).
        """
        reserved = set(reserved or ())
        mapping = {}
        candidate = base
        for port in sorted(set(ports)):
            while candidate in reserved:
                candidate += 1
            if candidate > MAX_VLAN:
                raise ValueError(
                    f"ran out of VLAN ids allocating for {len(ports)} ports"
                )
            mapping[port] = candidate
            candidate += 1
        return cls(mapping)

    def assign(self, port: int, vlan: int) -> None:
        """Bind *port* <-> *vlan*, enforcing bijectivity."""
        if port < 1:
            raise ValueError(f"port numbers start at 1, got {port}")
        if not 2 <= vlan <= MAX_VLAN:
            raise ValueError(f"usable VLAN ids are 2..{MAX_VLAN}, got {vlan}")
        if port in self._port_to_vlan:
            raise ValueError(f"port {port} already mapped to {self._port_to_vlan[port]}")
        if vlan in self._vlan_to_port:
            raise ValueError(f"VLAN {vlan} already mapped to port {self._vlan_to_port[vlan]}")
        self._port_to_vlan[port] = vlan
        self._vlan_to_port[vlan] = port

    def vlan_of(self, port: int) -> int:
        """The VLAN id tagging traffic of access *port*."""
        try:
            return self._port_to_vlan[port]
        except KeyError:
            raise KeyError(f"port {port} is not managed by this map") from None

    def port_of(self, vlan: int) -> int:
        """The access port a trunk frame tagged *vlan* belongs to."""
        try:
            return self._vlan_to_port[vlan]
        except KeyError:
            raise KeyError(f"VLAN {vlan} is not managed by this map") from None

    def get_vlan(self, port: int) -> Optional[int]:
        return self._port_to_vlan.get(port)

    def get_port(self, vlan: int) -> Optional[int]:
        return self._vlan_to_port.get(vlan)

    @property
    def ports(self) -> list[int]:
        return sorted(self._port_to_vlan)

    @property
    def vlans(self) -> list[int]:
        return sorted(self._vlan_to_port)

    def __len__(self) -> int:
        return len(self._port_to_vlan)

    def __contains__(self, port: int) -> bool:
        return port in self._port_to_vlan

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """(port, vlan) pairs in port order."""
        for port in sorted(self._port_to_vlan):
            yield port, self._port_to_vlan[port]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PortVlanMap):
            return self._port_to_vlan == other._port_to_vlan
        return NotImplemented

    def validate(self) -> None:
        """Internal consistency check (the bijection invariant)."""
        if len(self._port_to_vlan) != len(self._vlan_to_port):
            raise AssertionError("port->vlan and vlan->port sizes differ")
        for port, vlan in self._port_to_vlan.items():
            if self._vlan_to_port.get(vlan) != port:
                raise AssertionError(f"mapping not bijective at port {port}")

    # -------------------------------------------------------- persistence

    def to_json(self) -> str:
        return json.dumps(
            {str(port): vlan for port, vlan in self._port_to_vlan.items()},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "PortVlanMap":
        raw = json.loads(text)
        return cls({int(port): int(vlan) for port, vlan in raw.items()})

    def describe(self) -> str:
        pairs = ", ".join(f"{port}->{vlan}" for port, vlan in self)
        return f"PortVlanMap({pairs})"

    __repr__ = describe
