"""Data-plane transparency verification by differential testing.

The architectural property everything rests on: a controller program
cannot tell a HARMLESS-migrated legacy switch from an ideal OpenFlow
switch.  The harness builds both environments with identical hosts and
identical controller apps, drives both with the same seeded traffic,
and diffs what the hosts observed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.controller.core import Controller
from repro.legacy.switch import LegacySwitch
from repro.mgmt import DeviceConnection, get_network_driver
from repro.net.addresses import IPv4Address, MACAddress
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.simulator import Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib
from repro.softswitch.costmodel import DatapathCostModel
from repro.softswitch.datapath import SoftSwitch
from repro.core.manager import HarmlessManager

#: Cost model with zero delay: differential runs compare *behaviour*,
#: so timing differences between environments must not cause mismatches.
ZERO_COST = DatapathCostModel.zero()

AppFactory = Callable[[], list]
TrafficScript = Callable[["Environment"], None]


@dataclass
class Environment:
    """One side of the differential setup."""

    kind: str  # "harmless" | "ideal"
    sim: Simulator
    hosts: list[Host]
    controller: Controller

    def observations(self) -> dict[str, object]:
        """What the hosts experienced, in comparable form."""
        result: dict[str, object] = {}
        for host in self.hosts:
            result[host.name] = {
                "udp": sorted(
                    (str(src), src_port, dst_port, payload)
                    for src, src_port, dst_port, payload in host.udp_received
                ),
                "pings_ok": len(host.rtts()),
                "pings_lost": sum(1 for r in host.ping_results if r.lost),
            }
        return result


@dataclass
class DifferentialResult:
    """Outcome of one differential run."""

    equivalent: bool
    mismatches: list[str] = field(default_factory=list)
    harmless_obs: dict = field(default_factory=dict)
    ideal_obs: dict = field(default_factory=dict)


class TransparencyHarness:
    """Builds paired environments and runs differential experiments."""

    def __init__(
        self,
        num_hosts: int,
        app_factory: AppFactory,
        num_legacy_ports: "int | None" = None,
    ) -> None:
        self.num_hosts = num_hosts
        self.app_factory = app_factory
        self.num_legacy_ports = num_legacy_ports or (num_hosts + 1)

    def _make_hosts(self, sim: Simulator) -> list[Host]:
        return [
            Host(
                sim,
                f"h{index + 1}",
                MACAddress(0x020000000001 + index),
                IPv4Address(f"10.0.0.{index + 1}"),
            )
            for index in range(self.num_hosts)
        ]

    def build_harmless(self) -> Environment:
        """Legacy switch + HARMLESS migration, hosts on ports 1..N."""
        sim = Simulator()
        legacy = LegacySwitch(
            sim, "legacy", num_ports=self.num_legacy_ports, processing_delay_s=0.0
        )
        hosts = self._make_hosts(sim)
        for index, host in enumerate(hosts):
            Link(host.port0, legacy.port(index + 1))
        mib, _ = attach_bridge_mib(legacy)
        driver = get_network_driver("sim-ios")(
            DeviceConnection(agent=SnmpAgent(mib), hostname="legacy")
        )
        driver.open()
        controller = Controller(sim)
        for app in self.app_factory():
            controller.add_app(app)
        manager = HarmlessManager(sim, controller=controller, cost_model=ZERO_COST)
        manager.migrate(
            legacy,
            driver,
            trunk_port=self.num_legacy_ports,
            access_ports=list(range(1, self.num_hosts + 1)),
            controller_latency_s=1e-6,
        )
        sim.run(until=0.01)  # let the handshake and app setup settle
        return Environment(kind="harmless", sim=sim, hosts=hosts, controller=controller)

    def build_ideal(self) -> Environment:
        """The reference: hosts directly on an ideal OpenFlow switch."""
        sim = Simulator()
        switch = SoftSwitch(sim, "ideal", datapath_id=0x100, cost_model=ZERO_COST)
        hosts = self._make_hosts(sim)
        for index, host in enumerate(hosts):
            Link(host.port0, switch.add_port(index + 1))
        controller = Controller(sim)
        for app in self.app_factory():
            controller.add_app(app)
        controller.connect(switch, latency_s=1e-6)
        sim.run(until=0.01)
        return Environment(kind="ideal", sim=sim, hosts=hosts, controller=controller)

    def run(
        self, traffic: TrafficScript, horizon_s: float = 5.0
    ) -> DifferentialResult:
        """Drive both environments with *traffic* and diff the outcome."""
        harmless_env = self.build_harmless()
        ideal_env = self.build_ideal()
        for env in (harmless_env, ideal_env):
            traffic(env)
            env.sim.run(until=env.sim.now + horizon_s)
        harmless_obs = harmless_env.observations()
        ideal_obs = ideal_env.observations()
        mismatches = []
        for host_name in sorted(set(harmless_obs) | set(ideal_obs)):
            mine = harmless_obs.get(host_name)
            theirs = ideal_obs.get(host_name)
            if mine != theirs:
                mismatches.append(
                    f"{host_name}: harmless={mine!r} ideal={theirs!r}"
                )
        return DifferentialResult(
            equivalent=not mismatches,
            mismatches=mismatches,
            harmless_obs=harmless_obs,
            ideal_obs=ideal_obs,
        )


def random_udp_traffic(
    seed: int, num_messages: int = 40, window_s: float = 2.0
) -> TrafficScript:
    """A seeded random unicast UDP workload (same in both environments)."""

    def script(env: Environment) -> None:
        rng = random.Random(seed)
        for index in range(num_messages):
            sender, receiver = rng.sample(env.hosts, 2)
            delay = rng.uniform(0.0, window_s)
            payload = f"msg-{index}".encode()
            port = rng.choice([4000, 5000, 6000])
            env.sim.schedule(
                delay,
                lambda s=sender, r=receiver, p=payload, dp=port, i=index: s.send_udp(
                    r.ip, dp, p, src_port=10000 + i % 1000
                ),
            )

    return script
