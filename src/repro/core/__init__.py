"""HARMLESS — the paper's contribution.

Hybrid ARchitecture to Migrate Legacy Ethernet Switches to SDN:

* :mod:`repro.core.portmap` — the access-port <-> VLAN-id bijection,
* :mod:`repro.core.translator` — SS_1 rule generation (the "Flow table
  of SS_1" in Fig. 1) and its correctness checker,
* :mod:`repro.core.s4` — the HARMLESS-S4 composite device (SS_1 + SS_2
  joined by patch ports),
* :mod:`repro.core.manager` — end-to-end orchestration: discover the
  legacy switch over SNMP/NAPALM, push the VLAN scheme, build S4,
  install translator rules, connect the SDN controller,
* :mod:`repro.core.migration` — multi-switch incremental migration
  planning (waves, hybrid operation, cost/downtime accounting),
  executed for real against a :mod:`repro.fabric` topology by
  :class:`repro.core.manager.HarmlessFleet`,
* :mod:`repro.core.verify` — data-plane transparency verification by
  differential testing against an ideal OpenFlow switch.
"""

from repro.core.manager import (
    FleetWaveReport,
    HarmlessDeployment,
    HarmlessError,
    HarmlessFleet,
    HarmlessManager,
    ReachabilityReport,
    ResilienceReport,
)
from repro.core.migration import (
    MigrationPlan,
    MigrationPlanner,
    MigrationStrategy,
    SwitchSite,
)
from repro.core.portmap import PortVlanMap
from repro.core.s4 import HarmlessS4
from repro.core.translator import TranslatorRules, verify_translator_rules
from repro.core.verify import DifferentialResult, TransparencyHarness

__all__ = [
    "PortVlanMap",
    "TranslatorRules",
    "verify_translator_rules",
    "HarmlessS4",
    "HarmlessManager",
    "HarmlessDeployment",
    "HarmlessError",
    "HarmlessFleet",
    "FleetWaveReport",
    "ReachabilityReport",
    "ResilienceReport",
    "MigrationPlanner",
    "MigrationPlan",
    "MigrationStrategy",
    "SwitchSite",
    "TransparencyHarness",
    "DifferentialResult",
]
