"""Throughput / latency measurement over simulated topologies."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable

from repro.net.ethernet import EthernetFrame
from repro.netsim.node import Node, Port
from repro.netsim.simulator import Simulator
from repro.softswitch.costmodel import DatapathCostModel
from repro.softswitch.datapath import SoftSwitch
from repro.traffic.generators import FlowSpec, synth_frame


@dataclass
class LatencyStats:
    """Summary of per-packet one-way latencies (seconds)."""

    samples: list[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else float("nan")

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else float("nan")

    def percentile(self, pct: float) -> float:
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
        return ordered[index]


@dataclass
class MeasurementResult:
    """One measurement row."""

    label: str
    offered_packets: int
    delivered_packets: int
    duration_s: float
    latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def delivered_pps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.delivered_packets / self.duration_s

    @property
    def loss_rate(self) -> float:
        if not self.offered_packets:
            return 0.0
        return 1.0 - self.delivered_packets / self.offered_packets

    def row(self) -> str:
        return (
            f"{self.label:<28s} {self.delivered_pps / 1e6:8.3f} Mpps   "
            f"loss {self.loss_rate * 100:5.2f}%   "
            f"lat mean {self.latency.mean * 1e6:7.2f}us "
            f"p99 {self.latency.p99 * 1e6:7.2f}us"
        )


class _MeasurementSink(Node):
    """Terminates measured traffic and records per-packet latency."""

    def __init__(self, sim: Simulator, name: str, stats: "MeasurementResult") -> None:
        super().__init__(sim, name)
        self.stats = stats
        self._send_times: dict[bytes, float] = {}

    def expect(self, frame: EthernetFrame, sent_at: float) -> None:
        # Key by payload identity (unique per measured packet).
        self._send_times[frame.payload[-8:]] = sent_at

    def receive(self, port: Port, frame: EthernetFrame) -> None:
        sent_at = self._send_times.pop(frame.payload[-8:], None)
        self.stats.delivered_packets += 1
        if sent_at is not None:
            self.stats.latency.record(self.sim.now - sent_at)


InjectFn = Callable[[EthernetFrame], None]


def measure_forwarding(
    sim: Simulator,
    label: str,
    ingress: InjectFn,
    sink: "_MeasurementSink",
    flows: list[FlowSpec],
    packets_per_flow: int,
    interval_s: float,
    payload_len: int = 56,
    vlan_id: "int | None" = None,
) -> MeasurementResult:
    """Send packets round-robin over *flows* and measure at *sink*.

    The caller wires the topology and provides ``ingress`` (how a frame
    enters the device under test) and the sink node at the egress side.
    """
    result = sink.stats
    result.label = label
    offered = 0
    send_clock = sim.now
    for index in range(packets_per_flow * len(flows)):
        spec = flows[index % len(flows)]
        frame = synth_frame(spec, payload_len=payload_len, vlan_id=vlan_id)
        # Stamp a unique trailer so the sink can match send times.
        stamped = frame.copy()
        stamped.payload = frame.payload[:-8] + index.to_bytes(8, "big")
        send_clock += interval_s
        offered += 1

        def fire(f=stamped, t=send_clock):
            sink.expect(f, t)
            ingress(f)

        sim.schedule_at(send_clock, fire)
    start = sim.now
    sim.run()
    result.offered_packets = offered
    result.duration_s = max(sim.now - start, interval_s * offered)
    return result


def make_sink(sim: Simulator, label: str) -> "_MeasurementSink":
    """A sink node pre-wired with an empty result row."""
    result = MeasurementResult(
        label=label, offered_packets=0, delivered_packets=0, duration_s=0.0
    )
    return _MeasurementSink(sim, f"sink-{label}", result)


def measure_pipeline_rate(
    cost_model: DatapathCostModel,
    lookups: int,
    actions: int,
    vlan_ops: int = 0,
    group_selections: int = 0,
    patch_hops: int = 0,
) -> float:
    """Analytic single-core pps for a pipeline shape (no simulation)."""
    per_packet = cost_model.cost_s(
        lookups=lookups,
        actions=actions,
        vlan_ops=vlan_ops,
        group_selections=group_selections,
        patch_hops=patch_hops,
    )
    return 1.0 / per_packet
