"""NFPA-style measurement harness.

Named after the authors' Network Function Performance Analyzer [Csikor
et al., NFV-SDN 2015]: build a device-under-test topology, blast a
reproducible workload through it, and report throughput and latency
per configuration.  Here the DUT is simulated, so "throughput" comes
from the calibrated cost model and the simulated clock — absolute
numbers are model outputs, but ratios between configurations (HARMLESS
vs native software switch vs legacy) are meaningful.
"""

from repro.nfpa.harness import (
    LatencyStats,
    MeasurementResult,
    make_sink,
    measure_forwarding,
    measure_pipeline_rate,
)

__all__ = [
    "MeasurementResult",
    "LatencyStats",
    "make_sink",
    "measure_forwarding",
    "measure_pipeline_rate",
]
