"""Declarative topology builders for multi-switch legacy fabrics.

One call instantiates a whole enterprise fabric: legacy switches with
their 802.1Q dataplanes, inter-switch trunk links, per-edge hosts with
full ARP/IP stacks, and one SNMP agent + NAPALM-style vendor driver per
device.  Every switch reserves one free port (the highest-numbered one)
for the HARMLESS server trunk, so a :class:`repro.core.manager
.HarmlessFleet` can migrate any subset of the fabric mid-simulation
without re-cabling anything else.

Three families are provided:

* :func:`leaf_spine_fabric` — N edge switches homed onto a spine tier
  (edges are round-robined across spines and the spines are chained,
  so the fabric is a tree and works with or without spanning tree);
* :func:`ring_fabric` — switches in a ring.  Pass ``stp=True`` to run
  :class:`repro.legacy.stp.SpanningTree` on every trunk port: the
  closing link stays live and STP blocks exactly one port, which takes
  over when any other ring link is cut.  Without STP the closing link
  is built but administratively blocked on both ends (a static
  stand-in for the blocking STP would compute);
* :func:`campus_fabric` — the classic core / distribution / access
  tree with hosts on the access tier.

:func:`enable_fabric_stp` retrofits spanning tree onto any built
fabric — trunk-link end-ports become the managed STP ports and every
other port (hosts, generators, the HARMLESS trunk) stays an ungated
edge port.

**Replica slimming.**  A sharded worker (see
:mod:`repro.fabric.partition`) holds an SPMD replica of the whole
fabric but only ever *exercises* its owned region: foreign sites
receive no traffic (the partition severs every cut and the topologies
are trees), are never migrated, swept or digested locally, and their
management planes are never queried.  Building the replica inside
:func:`slim_replica_build` therefore replaces the provably inert
foreign state with stubs — no SNMP agent / vendor driver (a
:class:`StubDriver` placeholder) and no host stacks or host links
(:class:`StubHost` placeholders carrying the identity fields sweeps
read) — while keeping everything identity-bearing real: the
:class:`~repro.legacy.switch.LegacySwitch` itself (port counts drive
wave planning and trunk wiring), the MAC/IP allocation sequence, and
the gen-port geometry stations attach to.  The engine's shadow-drop
counter pins the "no traffic ever reaches a foreign region" invariant
that makes the slimming safe.

Edge switches can also reserve *generator ports*: access ports left
unwired for traffic stations (e.g. :class:`repro.traffic.generators
.BurstSource`) attached later via :meth:`Fabric.attach_station` — they
are part of the managed access-port set, so station traffic hairpins
through the migrated S4 datapaths exactly like host traffic.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.legacy.stp import SpanningTree
from repro.legacy.switch import (
    DEFAULT_PROCESSING_DELAY_S,
    LegacySwitch,
)
from repro.mgmt.base import DeviceConnection, NetworkDriver
from repro.mgmt.drivers import get_network_driver
from repro.net.addresses import IPv4Address, MACAddress
from repro.netsim.host import Host
from repro.netsim.link import DEFAULT_QUEUE_FRAMES, Link
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.snmp.agent import SnmpAgent
from repro.snmp.bridge_mib import attach_bridge_mib

#: Access/host links default to GbE (matches the legacy switches).
DEFAULT_HOST_BANDWIDTH_BPS = 1_000_000_000
#: Inter-switch trunks default to 10 GbE.
DEFAULT_TRUNK_BANDWIDTH_BPS = 10_000_000_000
#: Base MAC of fabric hosts (host k gets base + k).
HOST_MAC_BASE = 0x02_00_00_00_00_01
#: Hosts are numbered into 10.0.x.y (250 per /24 octet block); the cap
#: only bounds the address plan, far above any buildable fabric.
MAX_FABRIC_HOSTS = 62_500

#: Thread-local slim-build context (see :func:`slim_replica_build`);
#: thread-local because the thread backend builds shard replicas with
#: different foreign sets in one process.
_slim_context = threading.local()


@contextmanager
def slim_replica_build(foreign_sites):
    """Builders called inside this context stub out *foreign_sites*.

    Used by sharded workers: sites the worker does not own get a
    :class:`StubDriver` instead of an SNMP agent + vendor driver, and
    :class:`StubHost` placeholders instead of host stacks and host
    links.  Everything that carries cross-shard identity — the switch
    and its port plan, MAC/IP allocation order, gen ports — is built
    for real.  Nesting restores the previous context on exit.
    """
    previous = getattr(_slim_context, "foreign", None)
    _slim_context.foreign = frozenset(foreign_sites)
    try:
        yield
    finally:
        _slim_context.foreign = previous


def _foreign_sites() -> "frozenset[str] | None":
    return getattr(_slim_context, "foreign", None)


class StubHost:
    """Identity-only stand-in for a foreign replica host.

    Carries exactly what fabric-wide consumers read off *other* shards'
    hosts — ``name`` / ``mac`` / ``ip`` (reachability sweeps address
    their probes by these) — and no simulator state.  ``is_stub``
    lets owners (:meth:`repro.core.manager.HarmlessFleet._owned_hosts`)
    assert they never sweep *from* a stub.
    """

    is_stub = True

    def __init__(self, name: str, mac: MACAddress, ip: IPv4Address) -> None:
        self.name = name
        self.mac = mac
        self.ip = ip

    def __repr__(self) -> str:
        return f"StubHost({self.name}, {self.ip})"


class StubDriver:
    """Management-plane stand-in for a foreign replica site.

    A worker never opens, queries or migrates a site it does not own;
    the stub keeps ``vendor``/``hostname`` for description output and
    fails loudly on any real driver call.
    """

    is_stub = True

    def __init__(self, vendor: str, hostname: str) -> None:
        self.vendor = vendor
        self.hostname = hostname

    def __getattr__(self, name: str):
        raise AttributeError(
            f"StubDriver({self.hostname}): foreign site management plane "
            f"was slimmed away (attempted .{name})"
        )

    def __repr__(self) -> str:
        return f"StubDriver({self.hostname})"


@dataclass
class FabricSite:
    """One legacy switch of the fabric, with its management plane."""

    name: str
    role: str  #: "edge" | "spine" | "core" | "distribution" | "access"
    switch: LegacySwitch
    driver: NetworkDriver
    hosts: "list[Host]" = field(default_factory=list)
    host_ports: "list[int]" = field(default_factory=list)
    uplink_ports: "list[int]" = field(default_factory=list)
    #: Access ports reserved for traffic stations (unwired until
    #: :meth:`Fabric.attach_station`).
    gen_ports: "list[int]" = field(default_factory=list)
    #: The free port cabled to the HARMLESS server at migration time.
    trunk_port: int = 0
    #: Pod index for host-bearing sites (edge/access), else None.
    pod: "int | None" = None

    @property
    def access_ports(self) -> "list[int]":
        """Every port HARMLESS should manage (all but the S4 trunk)."""
        return sorted(self.host_ports + self.uplink_ports + self.gen_ports)

    def describe(self) -> str:
        parts = [
            f"{self.name} ({self.role}, {self.driver.vendor}):",
            f"{len(self.host_ports)} host port(s)",
            f"{len(self.uplink_ports)} uplink(s)",
        ]
        if self.gen_ports:
            parts.append(f"{len(self.gen_ports)} gen port(s)")
        parts.append(f"trunk reserved on port {self.trunk_port}")
        return " ".join(parts)


class Fabric:
    """A built multi-switch topology (the output of the builders)."""

    def __init__(self, sim: Simulator, kind: str) -> None:
        self.sim = sim
        self.kind = kind
        self.sites: dict[str, FabricSite] = {}
        #: Inter-switch links in creation order (blocked ones included).
        self.trunk_links: list[Link] = []
        #: Links built but administratively blocked (ring closures).
        self.blocked_links: list[Link] = []
        #: site name -> SpanningTree, filled by :func:`enable_fabric_stp`.
        self.stp: dict[str, SpanningTree] = {}
        #: Stations attached to gen ports, per site name.
        self.stations: dict[str, list[Node]] = {}
        self._next_host = 0
        #: Foreign sites/hosts built as stubs under
        #: :func:`slim_replica_build` (0 on a full build).
        self.stub_sites = 0
        self.stub_hosts = 0

    # ------------------------------------------------------------ queries

    def site(self, name: str) -> FabricSite:
        try:
            return self.sites[name]
        except KeyError:
            raise KeyError(f"fabric has no site {name!r}") from None

    @property
    def hosts(self) -> "list[Host]":
        """All hosts, in site insertion order then port order."""
        return [host for site in self.sites.values() for host in site.hosts]

    def edge_sites(self) -> "list[FabricSite]":
        """Sites that carry hosts or stations, in pod order."""
        sites = [site for site in self.sites.values() if site.pod is not None]
        return sorted(sites, key=lambda site: site.pod)

    def pods(self) -> "list[list[Host]]":
        """Hosts grouped by pod (edge/access switch)."""
        return [site.hosts for site in self.edge_sites()]

    # ------------------------------------------------------------ wiring

    def attach_station(self, site_name: str, node: Node, **link_kwargs) -> int:
        """Wire *node*'s first port to the next free gen port of a site.

        Returns the legacy port number used.  The port is already part
        of the site's managed access-port set, so after migration the
        station's traffic rides the S4 hairpin like any host's.
        """
        site = self.site(site_name)
        free = [
            number
            for number in site.gen_ports
            if site.switch.port(number).link is None
        ]
        if not free:
            raise ValueError(f"{site_name}: no free generator ports")
        number = free[0]
        port = node.ports[min(node.ports)] if node.ports else node.add_port()
        link_kwargs.setdefault("bandwidth_bps", DEFAULT_HOST_BANDWIDTH_BPS)
        link_kwargs.setdefault("queue_frames", DEFAULT_QUEUE_FRAMES)
        Link(port, site.switch.port(number), **link_kwargs)
        self.stations.setdefault(site_name, []).append(node)
        return number

    # ------------------------------------------------------------ output

    def describe(self) -> str:
        lines = [
            f"fabric '{self.kind}': {len(self.sites)} switches, "
            f"{len(self.hosts)} hosts, "
            f"{len(self.trunk_links)} inter-switch links"
            + (f" ({len(self.blocked_links)} blocked)" if self.blocked_links else "")
        ]
        for site in self.sites.values():
            lines.append(f"  {site.describe()}")
        for link in self.trunk_links:
            blocked = "  [blocked]" if link in self.blocked_links else ""
            lines.append(f"  link {link.name}{blocked}")
        return "\n".join(lines)


class _Builder:
    """Shared plumbing for the fabric families."""

    def __init__(
        self,
        kind: str,
        sim: "Simulator | None",
        vendor: str,
        host_bandwidth_bps: "float | None",
        trunk_bandwidth_bps: "float | None",
        queue_frames: int,
        processing_delay_s: float,
    ) -> None:
        self.fabric = Fabric(sim or Simulator(), kind)
        self.vendor = vendor
        self.host_bandwidth_bps = host_bandwidth_bps
        self.trunk_bandwidth_bps = trunk_bandwidth_bps
        self.queue_frames = queue_frames
        self.processing_delay_s = processing_delay_s

    def add_site(
        self,
        name: str,
        role: str,
        num_hosts: int = 0,
        num_uplinks: int = 0,
        num_gen_ports: int = 0,
        pod: "int | None" = None,
    ) -> FabricSite:
        """One legacy switch: hosts first, uplinks next, trunk last."""
        sim = self.fabric.sim
        num_ports = num_hosts + num_uplinks + num_gen_ports + 1
        foreign = _foreign_sites()
        slim = foreign is not None and name in foreign
        # The switch itself is always real: its port plan drives wave
        # planning, trunk wiring, severing and station attachment.
        switch = LegacySwitch(
            sim, name, num_ports=num_ports,
            processing_delay_s=self.processing_delay_s,
        )
        if slim:
            self.fabric.stub_sites += 1
            driver = StubDriver(self.vendor, name)
        else:
            mib, _ = attach_bridge_mib(switch)
            driver = get_network_driver(self.vendor)(
                DeviceConnection(agent=SnmpAgent(mib), hostname=name)
            )
            driver.open()
        site = FabricSite(
            name=name, role=role, switch=switch, driver=driver,
            trunk_port=num_ports, pod=pod,
        )
        for offset in range(num_hosts):
            number = offset + 1
            # Consume the allocation slot even for stubs so MAC/IP
            # assignment is identical on every replica.
            index = self.fabric._next_host
            self.fabric._next_host += 1
            if index >= MAX_FABRIC_HOSTS:
                raise ValueError(
                    f"fabric builders support at most {MAX_FABRIC_HOSTS} hosts"
                )
            mac = MACAddress(HOST_MAC_BASE + index)
            ip = IPv4Address(f"10.0.{index // 250}.{index % 250 + 1}")
            host_name = f"{name}-h{offset + 1}"
            if slim:
                self.fabric.stub_hosts += 1
                host = StubHost(host_name, mac, ip)
            else:
                host = Host(sim, host_name, mac, ip)
                Link(
                    host.port0,
                    switch.port(number),
                    bandwidth_bps=self.host_bandwidth_bps,
                    queue_frames=self.queue_frames,
                )
            site.hosts.append(host)
            site.host_ports.append(number)
        site.uplink_ports = list(
            range(num_hosts + 1, num_hosts + num_uplinks + 1)
        )
        site.gen_ports = list(
            range(
                num_hosts + num_uplinks + 1,
                num_hosts + num_uplinks + num_gen_ports + 1,
            )
        )
        self.fabric.sites[name] = site
        return site

    def link(
        self, site_a: FabricSite, port_a: int, site_b: FabricSite, port_b: int
    ) -> Link:
        """An inter-switch trunk between two reserved uplink ports."""
        trunk = Link(
            site_a.switch.port(port_a),
            site_b.switch.port(port_b),
            bandwidth_bps=self.trunk_bandwidth_bps,
            queue_frames=self.queue_frames,
            name=f"{site_a.name}:{port_a}<->{site_b.name}:{port_b}",
        )
        self.fabric.trunk_links.append(trunk)
        return trunk

    def block(self, link: Link) -> None:
        """Administratively block both ends (the no-STP loop breaker)."""
        for port in (link.port_a, link.port_b):
            switch = port.node
            assert isinstance(switch, LegacySwitch)
            switch.link_down(port.number)
        self.fabric.blocked_links.append(link)


def enable_fabric_stp(fabric: Fabric, **stp_kwargs) -> "dict[str, SpanningTree]":
    """Run spanning tree on every switch of a built fabric.

    The managed port set of each site is derived from the fabric's
    trunk links: every end-port of an inter-switch link participates in
    the election, everything else (hosts, generator ports, the HARMLESS
    server trunk) is an edge port — forwards immediately, never sees a
    BPDU.  Trunk ports that are administratively down (e.g. a ring
    closure blocked by the builder) start in the DISABLED role and
    rejoin the election if the port comes back up.

    Keyword arguments are forwarded to every :class:`SpanningTree`
    (timers, port cost).  Per-site bridge priority can't be set this
    way; build the trees by hand when a specific root must win.  The
    trees are stored as ``fabric.stp`` and returned.
    """
    if fabric.stp:
        raise ValueError("fabric already runs spanning tree")
    managed: "dict[str, set[int]]" = {}
    for link in fabric.trunk_links:
        for port in (link.port_a, link.port_b):
            managed.setdefault(port.node.name, set()).add(port.number)
    for name, numbers in managed.items():
        switch = fabric.site(name).switch
        tree = SpanningTree(switch, ports=sorted(numbers), **stp_kwargs)
        for number in sorted(numbers):
            if not switch.port(number).up:
                tree.port_down(number)
        fabric.stp[name] = tree
    return fabric.stp


def leaf_spine_fabric(
    edges: int = 4,
    spines: int = 1,
    hosts_per_edge: int = 2,
    gen_ports_per_edge: int = 0,
    sim: "Simulator | None" = None,
    vendor: str = "sim-ios",
    host_bandwidth_bps: "float | None" = DEFAULT_HOST_BANDWIDTH_BPS,
    trunk_bandwidth_bps: "float | None" = DEFAULT_TRUNK_BANDWIDTH_BPS,
    queue_frames: int = DEFAULT_QUEUE_FRAMES,
    processing_delay_s: float = DEFAULT_PROCESSING_DELAY_S,
) -> Fabric:
    """*edges* edge switches homed onto *spines* spine switches.

    Each edge is homed to exactly one spine (round-robin) and the
    spines are chained left-to-right, which keeps the fabric a tree —
    the legacy dataplane runs no spanning tree, so the builder must not
    create loops.  Edge sites come first in ``fabric.sites`` (pod order)
    so a wave plan migrates the access tier before the spine tier.
    """
    if edges < 1 or spines < 1:
        raise ValueError("need at least one edge and one spine")
    builder = _Builder(
        "leaf-spine", sim, vendor, host_bandwidth_bps,
        trunk_bandwidth_bps, queue_frames, processing_delay_s,
    )
    edge_sites = [
        builder.add_site(
            f"edge{index + 1}", "edge",
            num_hosts=hosts_per_edge, num_uplinks=1,
            num_gen_ports=gen_ports_per_edge, pod=index,
        )
        for index in range(edges)
    ]
    homed: "list[list[FabricSite]]" = [[] for _ in range(spines)]
    for index, edge in enumerate(edge_sites):
        homed[index % spines].append(edge)
    spine_sites = []
    for index in range(spines):
        chain_links = (1 if index > 0 else 0) + (1 if index < spines - 1 else 0)
        spine_sites.append(
            builder.add_site(
                f"spine{index + 1}", "spine",
                num_uplinks=len(homed[index]) + chain_links,
            )
        )
    free_uplinks = [list(spine.uplink_ports) for spine in spine_sites]
    for index, spine in enumerate(spine_sites):
        for edge in homed[index]:
            builder.link(edge, edge.uplink_ports[0], spine, free_uplinks[index].pop(0))
    for index in range(spines - 1):
        left, right = spine_sites[index], spine_sites[index + 1]
        builder.link(
            left, free_uplinks[index].pop(0),
            right, free_uplinks[index + 1].pop(0),
        )
    return builder.fabric


def ring_fabric(
    switches: int = 4,
    hosts_per_switch: int = 2,
    gen_ports_per_switch: int = 0,
    break_loop: bool = True,
    stp: bool = False,
    sim: "Simulator | None" = None,
    vendor: str = "sim-ios",
    host_bandwidth_bps: "float | None" = DEFAULT_HOST_BANDWIDTH_BPS,
    trunk_bandwidth_bps: "float | None" = DEFAULT_TRUNK_BANDWIDTH_BPS,
    queue_frames: int = DEFAULT_QUEUE_FRAMES,
    processing_delay_s: float = DEFAULT_PROCESSING_DELAY_S,
) -> Fabric:
    """*switches* edge switches in a ring (each carries hosts).

    With ``stp=True`` all ring links are live and every switch runs
    :class:`repro.legacy.stp.SpanningTree` on its two trunk ports: the
    election blocks exactly one port, and cutting any other ring link
    re-converges traffic through it (run the sim for roughly
    ``fabric.stp[...].settle_s()`` before sending traffic).  Without
    STP the closing link is built but administratively blocked on both
    ends when *break_loop* is true (default) — a static stand-in for
    the blocking STP would compute, since an unbroken ring with no
    spanning tree floods broadcasts forever.  ``break_loop=False``
    without STP yields the raw loop — at your own peril.
    """
    if switches < 2:
        raise ValueError("a ring needs at least two switches")
    builder = _Builder(
        "ring", sim, vendor, host_bandwidth_bps,
        trunk_bandwidth_bps, queue_frames, processing_delay_s,
    )
    sites = [
        builder.add_site(
            f"ring{index + 1}", "edge",
            num_hosts=hosts_per_switch, num_uplinks=2,
            num_gen_ports=gen_ports_per_switch, pod=index,
        )
        for index in range(switches)
    ]
    for index in range(switches):
        left = sites[index]
        right = sites[(index + 1) % switches]
        link = builder.link(
            left, left.uplink_ports[1], right, right.uplink_ports[0]
        )
        if index == switches - 1 and break_loop and not stp:
            builder.block(link)
    if stp:
        enable_fabric_stp(builder.fabric)
    return builder.fabric


def campus_fabric(
    distribution: int = 2,
    access_per_distribution: int = 2,
    hosts_per_access: int = 2,
    gen_ports_per_access: int = 0,
    sim: "Simulator | None" = None,
    vendor: str = "sim-ios",
    host_bandwidth_bps: "float | None" = DEFAULT_HOST_BANDWIDTH_BPS,
    trunk_bandwidth_bps: "float | None" = DEFAULT_TRUNK_BANDWIDTH_BPS,
    queue_frames: int = DEFAULT_QUEUE_FRAMES,
    processing_delay_s: float = DEFAULT_PROCESSING_DELAY_S,
) -> Fabric:
    """A campus tree: access switches under distribution under one core.

    Hosts live on the access tier; access sites come first in
    ``fabric.sites`` (pod order), then the distribution tier, then the
    core, so wave plans migrate the edge inward.
    """
    if distribution < 1 or access_per_distribution < 1:
        raise ValueError("need at least one distribution and one access switch")
    builder = _Builder(
        "campus", sim, vendor, host_bandwidth_bps,
        trunk_bandwidth_bps, queue_frames, processing_delay_s,
    )
    access_sites: "list[list[FabricSite]]" = []
    pod = 0
    for d_index in range(distribution):
        tier = []
        for a_index in range(access_per_distribution):
            tier.append(
                builder.add_site(
                    f"acc{d_index + 1}-{a_index + 1}", "access",
                    num_hosts=hosts_per_access, num_uplinks=1,
                    num_gen_ports=gen_ports_per_access, pod=pod,
                )
            )
            pod += 1
        access_sites.append(tier)
    dist_sites = [
        builder.add_site(
            f"dist{d_index + 1}", "distribution",
            num_uplinks=access_per_distribution + 1,
        )
        for d_index in range(distribution)
    ]
    core = builder.add_site("core", "core", num_uplinks=distribution)
    for d_index, dist in enumerate(dist_sites):
        ports = list(dist.uplink_ports)
        for access in access_sites[d_index]:
            builder.link(access, access.uplink_ports[0], dist, ports.pop(0))
        builder.link(dist, ports.pop(0), core, core.uplink_ports[d_index])
    return builder.fabric
