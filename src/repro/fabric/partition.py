"""Partitioning a fabric into shards, and the harness that runs them.

The :mod:`repro.netsim.sharded` engine gives us parallel event loops
with conservative-lookahead sync; this module supplies the fabric-level
pieces:

* :func:`partition_fabric` — decide which sites each shard owns.  The
  topology builders already encode locality (pods): a *cluster* is a
  non-pod anchor switch (spine, distribution) plus the pod sites homed
  onto it — or a lone pod site where no anchor exists (rings).
  Clusters are assigned to shards contiguously, so the cut set is the
  small set of anchor-to-anchor trunks (spine chain, dist-to-core,
  ring section joints), never the fat edge-to-anchor bundles.
* :class:`ShardWorker` — one shard's replica.  Every worker
  deterministically rebuilds the *identical* fabric topology on its
  own :class:`~repro.netsim.sharded.ShardSimulator`, severs the cut
  trunks into boundary proxies, and then drives only the sites it
  owns: its fleet replica migrates only owned switches, its stations
  transmit only from owned pods, its reachability probes source only
  from owned hosts.  Foreign regions of the replica receive no traffic
  (the fabrics are trees, so the cut separates them), they merely keep
  names, port numbers and wave structure aligned across shards — so by
  default they are built *slimmed* (see
  :func:`repro.fabric.topology.slim_replica_build`): real switches for
  the identity-bearing geometry, stubs in place of the foreign hosts,
  host links and management planes a worker provably never exercises.
  ``slim=False`` on :class:`ShardedFabric` restores full replicas.
* :class:`ShardedFabric` / :class:`ShardedFleet` — the user-facing
  facade: build once, choose ``backend="thread"`` (in-process, used by
  the differential tests) or ``backend="fork"`` (one process per
  shard — the actual multi-core speedup), and call the familiar
  ``fleet.migrate_all()`` / ``run()`` / ``stats()`` surface; results
  merge across shards.

Digests (:func:`site_digest`, :class:`PacketInRecorder`) exist for the
shard-count-invariance suite: everything a shard owns — switch
counters, FDB contents, port counters, host ping outcomes, S4 datapath
counters, packet-in payload multisets — serialises to comparable plain
data, and the union over shards must equal the single-process run
bit-for-bit.  Packet-in digests are per-switch *multisets* (sorted
payload hashes), because simultaneous arrivals on different shards may
interleave differently at a shared switch without changing anything
the fabric can observe.
"""

from __future__ import annotations

import hashlib
import queue as _queue_mod
import threading
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.controller.app import ControllerApp
from repro.netsim.sharded import (
    DEFAULT_SYNC_TIMEOUT_S,
    PeerAborted,
    PipeEndpoint,
    ShardSimulator,
    ShardSyncError,
    ThreadMesh,
    make_pipe_mesh,
    sever_link,
)
from repro.netsim.simulator import Simulator

if TYPE_CHECKING:
    from repro.fabric.topology import Fabric

__all__ = [
    "CutLink",
    "FabricPartition",
    "PacketInRecorder",
    "ShardWorker",
    "ShardedFabric",
    "ShardedFleet",
    "partition_fabric",
    "site_digest",
]


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CutLink:
    """One inter-shard trunk, identified by build order.

    ``index`` is the position in ``fabric.trunk_links`` — the builders
    are deterministic, so the index selects the same physical link in
    every shard's replica.
    """

    index: int
    name: str
    site_a: str
    site_b: str
    shard_a: int
    shard_b: int


@dataclass
class FabricPartition:
    """Which shard owns which site, and where the fabric is cut."""

    nshards: int
    assignment: "dict[str, int]"
    clusters: "list[list[str]]"
    cuts: "list[CutLink]" = field(default_factory=list)
    #: min propagation delay over the cuts — the sync lookahead.
    lookahead_s: "float | None" = None

    def owned_sites(self, shard: int) -> "list[str]":
        return [name for name, owner in self.assignment.items() if owner == shard]

    def describe(self) -> str:
        lines = [
            f"partition: {self.nshards} shard(s), "
            f"{len(self.cuts)} cut link(s), "
            f"lookahead {self.lookahead_s if self.lookahead_s else '-'}"
        ]
        for shard in range(self.nshards):
            names = ",".join(self.owned_sites(shard))
            lines.append(f"  shard {shard}: {names}")
        for cut in self.cuts:
            lines.append(
                f"  cut {cut.name} (shard {cut.shard_a} <-> {cut.shard_b})"
            )
        return "\n".join(lines)


def partition_fabric(fabric: "Fabric", nshards: int) -> FabricPartition:
    """Assign every site of *fabric* to one of *nshards* shards.

    Sites are grouped into anchor clusters (see the module docstring)
    and clusters are split contiguously — cluster ``i`` goes to shard
    ``i * nshards // len(clusters)`` — so cuts land on the sparse
    anchor-to-anchor trunks.  Raises when the fabric has fewer clusters
    than requested shards, or when any cut trunk has zero propagation
    delay (conservative sync needs positive lookahead).
    """
    if nshards < 1:
        raise ValueError("need at least one shard")

    neighbors: "dict[str, list[str]]" = {name: [] for name in fabric.sites}
    for link in fabric.trunk_links:
        site_a = link.port_a.node.name
        site_b = link.port_b.node.name
        neighbors[site_a].append(site_b)
        neighbors[site_b].append(site_a)

    clusters: "list[list[str]]" = []
    cluster_of: "dict[str, int]" = {}
    for site in fabric.sites.values():
        if site.pod is None:
            continue
        anchor = next(
            (
                peer
                for peer in neighbors[site.name]
                if fabric.sites[peer].pod is None
            ),
            None,
        )
        if anchor is not None and anchor in cluster_of:
            index = cluster_of[anchor]
        else:
            index = len(clusters)
            clusters.append([])
            if anchor is not None:
                clusters[index].append(anchor)
                cluster_of[anchor] = index
        clusters[index].append(site.name)
        cluster_of[site.name] = index
    if not clusters:
        raise ValueError("fabric has no pod sites to partition around")

    # Anchors that home no pods (a campus core, a spare spine) join the
    # cluster of their first already-clustered neighbor; iterate so
    # chains of them resolve too.
    pending = [name for name in fabric.sites if name not in cluster_of]
    while pending:
        still = []
        for name in pending:
            index = next(
                (cluster_of[peer] for peer in neighbors[name] if peer in cluster_of),
                None,
            )
            if index is None:
                still.append(name)
                continue
            clusters[index].append(name)
            cluster_of[name] = index
        if len(still) == len(pending):
            raise ValueError(f"sites not connected to any pod cluster: {still}")
        pending = still

    if nshards > len(clusters):
        raise ValueError(
            f"cannot split {len(clusters)} cluster(s) into {nshards} shards "
            f"(one cluster is the finest cut this fabric supports)"
        )
    assignment = {
        name: index * nshards // len(clusters)
        for index, cluster in enumerate(clusters)
        for name in cluster
    }

    cuts: "list[CutLink]" = []
    lookahead = None
    for index, link in enumerate(fabric.trunk_links):
        site_a = link.port_a.node.name
        site_b = link.port_b.node.name
        shard_a = assignment[site_a]
        shard_b = assignment[site_b]
        if shard_a == shard_b:
            continue
        if link.propagation_delay_s <= 0:
            raise ValueError(
                f"cut link {link.name} has zero propagation delay; "
                f"conservative sync needs positive lookahead"
            )
        cuts.append(
            CutLink(
                index=index,
                name=link.name,
                site_a=site_a,
                site_b=site_b,
                shard_a=shard_a,
                shard_b=shard_b,
            )
        )
        if lookahead is None or link.propagation_delay_s < lookahead:
            lookahead = link.propagation_delay_s
    if nshards > 1 and not cuts:
        raise ValueError("multi-shard partition produced no cut links")

    return FabricPartition(
        nshards=nshards,
        assignment=assignment,
        clusters=clusters,
        cuts=cuts,
        lookahead_s=lookahead,
    )


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------


def _payload_hash(in_port: int, data: bytes) -> str:
    return hashlib.sha1(in_port.to_bytes(4, "big") + data).hexdigest()[:16]


class PacketInRecorder(ControllerApp):
    """Records every packet-in as a per-switch multiset of payload hashes.

    A *multiset* (sorted hashes), not a sequence: two frames arriving at
    the same instant from different shards may reach a shared switch in
    either (time, seq) order, flipping which packet-in is emitted first
    without changing the set of packet-ins or any counter.  Register it
    before the forwarding app so it observes without consuming.
    """

    def __init__(self) -> None:
        self.by_switch: "dict[str, list[str]]" = {}

    def on_packet_in(self, dp, msg) -> bool:  # noqa: D102 - base class doc
        self.by_switch.setdefault(dp.name, []).append(
            _payload_hash(msg.in_port, msg.data)
        )
        return False

    def digest(self) -> "dict[str, list[str]]":
        return {name: sorted(hashes) for name, hashes in self.by_switch.items()}


def site_digest(
    fabric: "Fabric", site_name: str, fleet=None, include_rtts: bool = False
) -> dict:
    """Everything observable at one site, as comparable plain data.

    Covers the legacy switch (aggregate + per-port counters, FDB
    contents), its ports, its hosts (IP deliveries + per-ping
    outcomes), its stations, and — when *fleet* has migrated the
    site — the S4 datapath counters.  Ping RTTs are excluded by
    default: when two probes to the *same* destination tie at a shared
    trunk, their serialisation order (hence their RTT split) is
    tie-dependent, while loss/delivery is not.  Pass
    ``include_rtts=True`` for scenarios without such contention.
    """
    site = fabric.sites[site_name]
    switch = site.switch
    counters = {
        key: sorted(value.items()) if isinstance(value, dict) else value
        for key, value in asdict(switch.counters).items()
    }
    digest = {
        "counters": counters,
        "fdb": sorted(
            (entry.vlan_id, str(entry.mac), entry.port, entry.static)
            for entry in switch.fdb._entries.values()
        ),
        "ports": {
            number: (
                port.rx_frames,
                port.rx_bytes,
                port.tx_frames,
                port.tx_bytes,
                port.tx_dropped,
            )
            for number, port in sorted(switch.ports.items())
        },
        "hosts": {
            host.name: {
                "rx_ip_packets": host.rx_ip_packets,
                "pings": [
                    (result.sequence, result.lost)
                    for result in host.ping_results
                ],
                **(
                    {"rtts": host.rtts()} if include_rtts else {}
                ),
            }
            for host in site.hosts
        },
        "stations": {
            node.name: {"sent": node.sent, "rx": node.rx_count}
            for node in fabric.stations.get(site_name, [])
            if hasattr(node, "sent")
        },
    }
    deployment = getattr(fleet, "deployments", {}).get(site_name) if fleet else None
    if deployment is not None:
        digest["s4"] = {
            half.name: (
                half.packets_forwarded,
                half.packets_dropped,
                half.packets_to_controller,
            )
            for half in (deployment.s4.ss1, deployment.s4.ss2)
        }
    return digest


# ---------------------------------------------------------------------------
# The per-shard worker
# ---------------------------------------------------------------------------


class ShardWorker:
    """One shard: a full fabric replica driving only its owned sites.

    The same class backs both backends — the thread backend calls its
    methods from per-shard threads, the fork backend from a command
    loop inside a forked process.  Every method that advances simulated
    time (``run``, the fleet operations) is **collective**: the backend
    must invoke it on all shards concurrently, since the shard
    simulators rendezvous at lookahead windows.
    """

    def __init__(
        self,
        shard: int,
        partition: FabricPartition,
        build: "Callable[[Simulator], Fabric]",
        transport=None,
        slim: bool = True,
    ) -> None:
        from repro.fabric.topology import slim_replica_build

        self.shard = shard
        self.partition = partition
        self.sim = ShardSimulator(
            shard=shard,
            nshards=partition.nshards,
            lookahead_s=partition.lookahead_s if partition.nshards > 1 else None,
            transport=transport,
        )
        self.owned = set(partition.owned_sites(shard))
        foreign = frozenset(partition.assignment) - self.owned
        if slim and partition.nshards > 1 and foreign:
            with slim_replica_build(foreign):
                self.fabric = build(self.sim)
        else:
            self.fabric = build(self.sim)
        for cut in partition.cuts:
            link = self.fabric.trunk_links[cut.index]
            if cut.shard_a == shard:
                owned_port, peer = link.port_a, cut.shard_b
            elif cut.shard_b == shard:
                owned_port, peer = link.port_b, cut.shard_a
            else:
                owned_port, peer = None, -1
            sever_link(
                link, self.sim, boundary_id=cut.index,
                peer_shard=peer, owned_port=owned_port,
            )
        self.fleet = None
        self.recorder: "PacketInRecorder | None" = None

    # ------------------------------------------------------- fleet ops

    def fleet_init(self, record_packet_ins: bool = True, **fleet_kwargs) -> int:
        """Create this shard's fleet replica; returns the wave count."""
        from repro.apps.learning_switch import LearningSwitchApp
        from repro.controller.core import Controller
        from repro.core.manager import HarmlessFleet

        controller = Controller(self.sim, name=f"controller-s{self.shard}")
        if record_packet_ins:
            self.recorder = PacketInRecorder()
            controller.add_app(self.recorder)
        controller.add_app(LearningSwitchApp())
        self.fleet = HarmlessFleet(
            self.fabric,
            controller=controller,
            owned_sites=self.owned if self.partition.nshards > 1 else None,
            **fleet_kwargs,
        )
        return self.fleet.plan.num_waves

    def migrate_wave(self, verify: bool = True) -> dict:
        """Collective: execute the next wave (owned sites only)."""
        report = self.fleet.migrate_next_wave(verify=verify)
        row = {
            "index": report.index,
            "sites": report.sites,
            "migrated": [name for name in report.sites if name in self.owned],
            "capex_usd": report.capex_usd,
            "downtime_s": report.downtime_s,
            "sdn_ports_after": report.sdn_ports_after,
            "complete": self.fleet.complete,
            "reachability": None,
        }
        if report.reachability is not None:
            row["reachability"] = {
                "pairs": report.reachability.pairs,
                "answered": report.reachability.answered,
                "lost": report.reachability.lost,
            }
        return row

    def reach_sweep(
        self,
        window_s: "float | None" = None,
        host_names: "list[str] | None" = None,
    ) -> dict:
        """Collective: sweep owned-source -> all-host pairs.

        One sweep per call — convergence *loops* must live above the
        broadcast (see :meth:`ShardedFleet.await_reconvergence`): a
        per-worker retry loop would let shards with clean local sweeps
        exit early and deadlock the collective behind them.

        *host_names* restricts the sweep to a panel of hosts (sources
        are the owned subset of the panel, destinations the whole
        panel) — the probe-pair count on a big fabric is quadratic in
        hosts, so resilience scoring picks a fixed panel instead of
        sweeping every pair.
        """
        hosts = None
        if host_names is not None:
            wanted = set(host_names)
            hosts = [host for host in self.fabric.hosts if host.name in wanted]
        report = self.fleet.verify_reachability(hosts=hosts, window_s=window_s)
        return {
            "pairs": report.pairs,
            "answered": report.answered,
            "lost": report.lost,
        }

    # ----------------------------------------------------- station ops

    def attach_station(
        self, site_name: str, station_name: str, link_kwargs: "dict | None" = None
    ) -> int:
        """Attach a :class:`~repro.traffic.generators.BurstSource`.

        Attached on **every** shard (the replicas must stay wired
        identically — a foreign station is a valid flood/unicast sink);
        only the owning shard will ever transmit from it.
        """
        from repro.traffic.generators import BurstSource

        station = BurstSource(self.sim, station_name)
        return self.fabric.attach_station(site_name, station, **(link_kwargs or {}))

    def station_start(self, site_name: str, index: int, bursts: list) -> int:
        """Schedule bursts on a station — only on its owning shard."""
        if self.partition.assignment[site_name] != self.shard:
            return 0
        station = self.fabric.stations[site_name][index]
        station.start(bursts)
        return sum(len(frames) for _, frames in bursts)

    # ------------------------------------------------------- execution

    def run(self, until: "float | None" = None, max_events: "int | None" = None) -> int:
        """Collective: advance the shard simulators in lockstep."""
        return self.sim.run(until=until, max_events=max_events)

    # --------------------------------------------------------- results

    def digest(self, include_rtts: bool = False) -> dict:
        sites = {
            name: site_digest(
                self.fabric, name, fleet=self.fleet, include_rtts=include_rtts
            )
            for name in sorted(self.owned)
        }
        packet_ins = self.recorder.digest() if self.recorder is not None else {}
        return {"sites": sites, "packet_ins": packet_ins}

    def delivered(self) -> dict:
        """Per-station sent/received counts for owned sites."""
        return {
            node.name: {"sent": node.sent, "rx": node.rx_count}
            for site_name in sorted(self.owned)
            for node in self.fabric.stations.get(site_name, [])
        }

    def sim_stats(self) -> dict:
        stats = self.sim.sync_stats()
        stats["stub_sites"] = self.fabric.stub_sites
        stats["stub_hosts"] = self.fabric.stub_hosts
        return stats


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class _ThreadBackend:
    """All shards in-process, one command thread each.

    Messages cross shard boundaries by reference (no pickling), and the
    whole run shares one core — this backend exists for correctness
    (the differential suite) and for debugging, not for speed.
    """

    name = "thread"

    def __init__(
        self,
        partition: FabricPartition,
        build: "Callable[[Simulator], Fabric]",
        timeout_s: float = DEFAULT_SYNC_TIMEOUT_S,
        slim: bool = True,
    ) -> None:
        mesh = (
            ThreadMesh(partition.nshards, timeout_s=timeout_s)
            if partition.nshards > 1
            else None
        )
        self.workers = [
            ShardWorker(
                shard,
                partition,
                build,
                transport=mesh.endpoint(shard) if mesh is not None else None,
                slim=slim,
            )
            for shard in range(partition.nshards)
        ]
        self._inboxes = [_queue_mod.SimpleQueue() for _ in self.workers]
        self._outboxes = [_queue_mod.SimpleQueue() for _ in self.workers]
        self._threads = [
            threading.Thread(
                target=self._loop,
                args=(worker, self._inboxes[index], self._outboxes[index]),
                name=f"shard-worker-{index}",
                daemon=True,
            )
            for index, worker in enumerate(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    @staticmethod
    def _loop(worker: ShardWorker, inbox, outbox) -> None:
        while True:
            item = inbox.get()
            if item is None:
                return
            method, args, kwargs = item
            try:
                outbox.put(("ok", getattr(worker, method)(*args, **kwargs)))
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                if worker.sim.transport is not None:
                    worker.sim.transport.abort()
                outbox.put(("err", exc))

    def broadcast(self, method: str, *args, **kwargs) -> list:
        for inbox in self._inboxes:
            inbox.put((method, args, kwargs))
        outcomes = [outbox.get() for outbox in self._outboxes]
        return _collect(outcomes)

    def close(self) -> None:
        for inbox in self._inboxes:
            inbox.put(None)
        for thread in self._threads:
            thread.join(timeout=5)


class _ForkBackend:
    """One forked process per shard — the multi-core configuration.

    Pipes are created before forking (the boundary mesh peer-to-peer,
    one command pipe per worker to the parent); ``fork`` start method
    means the build callable is inherited, not pickled.  Command
    results and boundary records do pickle — both are plain data and
    frames.
    """

    name = "fork"

    def __init__(
        self,
        partition: FabricPartition,
        build: "Callable[[Simulator], Fabric]",
        timeout_s: float = DEFAULT_SYNC_TIMEOUT_S,
        slim: bool = True,
    ) -> None:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        nshards = partition.nshards
        meshes = make_pipe_mesh(nshards) if nshards > 1 else [dict()]
        self._timeout_s = timeout_s
        self._conns = []
        self.processes = []
        child_conns = []
        for shard in range(nshards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            self._conns.append(parent_conn)
            child_conns.append(child_conn)
        for shard in range(nshards):
            process = context.Process(
                target=_fork_worker_main,
                args=(
                    shard,
                    partition,
                    build,
                    meshes[shard] if nshards > 1 else None,
                    child_conns[shard],
                    timeout_s,
                    slim,
                ),
                name=f"shard-{shard}",
                daemon=True,
            )
            process.start()
            self.processes.append(process)
        # The parent holds no end of the boundary mesh and only its own
        # side of each command pipe — close the rest so a dead worker
        # surfaces as EOF/broken pipe instead of a silent hang.
        for mesh in meshes:
            for connection in mesh.values():
                connection.close()
        for connection in child_conns:
            connection.close()
        for shard, connection in enumerate(self._conns):
            status, detail = self._recv(shard, connection)
            if status != "ok":
                self.close()
                raise ShardSyncError(f"shard {shard} failed to build: {detail}")

    def _recv(self, shard: int, connection):
        if not connection.poll(self._timeout_s):
            raise ShardSyncError(f"shard {shard}: worker unresponsive")
        try:
            return connection.recv()
        except EOFError:
            raise ShardSyncError(f"shard {shard}: worker died") from None

    def broadcast(self, method: str, *args, **kwargs) -> list:
        for connection in self._conns:
            connection.send((method, args, kwargs))
        outcomes = []
        for shard, connection in enumerate(self._conns):
            try:
                outcomes.append(self._recv(shard, connection))
            except ShardSyncError as exc:
                outcomes.append(("err", exc))
        return _collect(
            [
                (status, ShardSyncError(detail) if status == "err"
                 and isinstance(detail, str) else detail)
                for status, detail in outcomes
            ]
        )

    def close(self) -> None:
        for connection in self._conns:
            try:
                connection.send(("__exit__", (), {}))
            except (OSError, ValueError):
                pass
        for process in self.processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        for connection in self._conns:
            connection.close()


def _fork_worker_main(
    shard: int,
    partition: FabricPartition,
    build,
    mesh: "dict | None",
    command_conn,
    timeout_s: float,
    slim: bool = True,
) -> None:
    """Entry point of a forked shard process: build, then serve commands."""
    import traceback

    try:
        transport = (
            PipeEndpoint(shard, mesh, timeout_s=timeout_s)
            if mesh is not None
            else None
        )
        worker = ShardWorker(
            shard, partition, build, transport=transport, slim=slim
        )
    except BaseException:  # noqa: BLE001 - reported over the pipe
        command_conn.send(("err", traceback.format_exc()))
        return
    command_conn.send(("ok", None))
    while True:
        try:
            method, args, kwargs = command_conn.recv()
        except EOFError:
            return
        if method == "__exit__":
            return
        try:
            command_conn.send(("ok", getattr(worker, method)(*args, **kwargs)))
        except PeerAborted as exc:
            command_conn.send(("err", f"PeerAborted: {exc}"))
        except BaseException as exc:  # noqa: BLE001 - reported over the pipe
            if worker.sim.transport is not None:
                worker.sim.transport.abort()
            command_conn.send(
                ("err", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
            )


def _collect(outcomes: "list[tuple[str, object]]") -> list:
    """Unwrap broadcast outcomes; raise the most informative failure.

    When one shard fails mid-collective its peers usually fail with
    :class:`PeerAborted` — the root cause is the non-PeerAborted error.
    """
    root = None
    fallback = None
    for status, value in outcomes:
        if status != "err":
            continue
        if isinstance(value, PeerAborted):
            fallback = fallback or value
        elif root is None:
            root = value
    if root is not None:
        raise root if isinstance(root, BaseException) else ShardSyncError(str(root))
    if fallback is not None:
        raise fallback
    return [value for _, value in outcomes]


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------


class ShardedFabric:
    """A fabric split across N shard simulators, driven as one object.

    *build* is a deterministic ``sim -> Fabric`` callable (typically a
    lambda over one of the :mod:`repro.fabric.topology` builders); it
    runs once on a throwaway simulator to compute the partition (the
    *reference* fabric, also used for topology queries — always a full,
    unslimmed build) and once per shard to create the replicas.  With
    *slim* (the default) each multi-shard replica stubs out the foreign
    state it provably never exercises — see
    :func:`repro.fabric.topology.slim_replica_build`; ``stats()``
    reports the per-shard ``stub_sites`` / ``stub_hosts``.

    Use as a context manager — ``close()`` tears the backend down.
    """

    def __init__(
        self,
        build: "Callable[[Simulator], Fabric]",
        shards: int = 1,
        backend: str = "thread",
        timeout_s: float = DEFAULT_SYNC_TIMEOUT_S,
        slim: bool = True,
    ) -> None:
        self.build = build
        self.reference = build(Simulator())
        self.partition = partition_fabric(self.reference, shards)
        if backend == "thread":
            self.backend = _ThreadBackend(
                self.partition, build, timeout_s=timeout_s, slim=slim
            )
        elif backend == "fork":
            self.backend = _ForkBackend(
                self.partition, build, timeout_s=timeout_s, slim=slim
            )
        else:
            raise ValueError(f"unknown backend {backend!r} (thread|fork)")

    # --------------------------------------------------------- control

    @property
    def nshards(self) -> int:
        return self.partition.nshards

    def fleet(self, **fleet_kwargs) -> "ShardedFleet":
        return ShardedFleet(self, **fleet_kwargs)

    def attach_station(
        self, site_name: str, station_name: str, **link_kwargs
    ) -> int:
        """Attach a burst station replica on every shard; returns port."""
        ports = self.backend.broadcast(
            "attach_station", site_name, station_name, link_kwargs or None
        )
        assert len(set(ports)) == 1, "replicas diverged on gen port allocation"
        return ports[0]

    def start_station(self, site_name: str, index: int, bursts: list) -> int:
        """Schedule bursts on the owning shard; returns frames queued."""
        return sum(
            self.backend.broadcast("station_start", site_name, index, bursts)
        )

    def run(self, until: "float | None" = None, max_events: "int | None" = None) -> int:
        """Advance all shards in lockstep; returns total events run."""
        return sum(self.backend.broadcast("run", until, max_events))

    # --------------------------------------------------------- results

    def digest(self, include_rtts: bool = False) -> dict:
        """Union of the per-shard digests (each site owned exactly once)."""
        merged = {"sites": {}, "packet_ins": {}}
        for row in self.backend.broadcast("digest", include_rtts):
            merged["sites"].update(row["sites"])
            merged["packet_ins"].update(row["packet_ins"])
        merged["sites"] = dict(sorted(merged["sites"].items()))
        merged["packet_ins"] = dict(sorted(merged["packet_ins"].items()))
        return merged

    def delivered(self) -> dict:
        merged = {}
        for row in self.backend.broadcast("delivered"):
            merged.update(row)
        return dict(sorted(merged.items()))

    def stats(self) -> dict:
        per_shard = self.backend.broadcast("sim_stats")
        drops_by_id: "dict[int, int]" = {}
        for row in per_shard:
            for boundary_id, frames in row["boundary_drops_by_id"].items():
                drops_by_id[boundary_id] = drops_by_id.get(boundary_id, 0) + frames
        return {
            "shards": self.nshards,
            "backend": self.backend.name,
            "now": max(row["now"] for row in per_shard),
            "events_processed": sum(row["events_processed"] for row in per_shard),
            "pending_events": sum(row["pending_events"] for row in per_shard),
            "sync_rounds": max(row["sync_rounds"] for row in per_shard),
            "rounds_skipped": max(row["rounds_skipped"] for row in per_shard),
            "frames_exported": sum(row["frames_exported"] for row in per_shard),
            "records_exported": sum(row["records_exported"] for row in per_shard),
            "bytes_exchanged": sum(row["bytes_sent"] for row in per_shard),
            "shadow_drops": sum(row["shadow_drops"] for row in per_shard),
            "boundary_drops": sum(row["boundary_drops"] for row in per_shard),
            "boundary_drops_by_id": dict(sorted(drops_by_id.items())),
            "stub_sites": sum(row["stub_sites"] for row in per_shard),
            "stub_hosts": sum(row["stub_hosts"] for row in per_shard),
            "per_shard": per_shard,
        }

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "ShardedFabric":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedFleet:
    """Fleet surface over a :class:`ShardedFabric`.

    Every shard holds a full fleet replica executing the identical wave
    plan; this facade fans each operation out and merges the reports —
    reachability sums the disjoint per-shard (owned source -> any host)
    pair sets back into the familiar all-pairs numbers.
    """

    def __init__(self, sharded: ShardedFabric, **fleet_kwargs) -> None:
        self.sharded = sharded
        wave_counts = sharded.backend.broadcast("fleet_init", **fleet_kwargs)
        assert len(set(wave_counts)) == 1, "replicas diverged on wave planning"
        self.num_waves = wave_counts[0]
        self.reports: "list[dict]" = []

    @property
    def complete(self) -> bool:
        return bool(self.reports) and self.reports[-1]["complete"]

    def migrate_next_wave(self, verify: bool = True) -> dict:
        rows = self.sharded.backend.broadcast("migrate_wave", verify)
        merged = dict(rows[0])
        merged["migrated"] = sorted(
            name for row in rows for name in row["migrated"]
        )
        if verify:
            merged["reachability"] = _merge_reachability(
                [row["reachability"] for row in rows]
            )
        self.reports.append(merged)
        return merged

    def migrate_all(self, verify: bool = True, strict: bool = False) -> "list[dict]":
        while not self.complete:
            report = self.migrate_next_wave(verify=verify)
            if strict and verify and report["reachability"]["lost"]:
                raise ShardSyncError(
                    f"wave {report['index']} broke the fabric: "
                    f"{report['reachability']['lost'][:5]}"
                )
        return self.reports

    def verify_reachability(
        self, host_names: "list[str] | None" = None
    ) -> dict:
        return _merge_reachability(
            self.sharded.backend.broadcast("reach_sweep", None, host_names)
        )

    def await_reconvergence(
        self,
        event: str = "fault",
        window_s: float = 0.25,
        deadline_s: float = 10.0,
        host_names: "list[str] | None" = None,
    ):
        """Sharded :meth:`repro.core.manager.HarmlessFleet
        .await_reconvergence`: repeated collective sweeps until the
        *merged* reachability is clean or *deadline_s* simulated time
        has passed.

        The convergence loop lives here, not in the workers: each
        worker only sees its owned sources, so a per-worker loop would
        let a locally clean shard exit its sweeps early while peers
        keep sweeping — diverging the collective-call counts and
        deadlocking the barrier.  One broadcast per sweep keeps every
        shard in lockstep; loss is judged on the global merge.
        """
        from repro.core.manager import ResilienceReport

        if window_s <= 0:
            raise ValueError("sweep window must be positive")

        def clock() -> float:
            return max(
                row["now"]
                for row in self.sharded.backend.broadcast("sim_stats")
            )

        started_at = clock()
        now = started_at
        sweeps = 0
        probes_lost = 0
        pairs = 0
        converged_at = None
        while now - started_at < deadline_s - 1e-12:
            merged = _merge_reachability(
                self.sharded.backend.broadcast(
                    "reach_sweep", window_s, host_names
                )
            )
            sweeps += 1
            pairs = merged["pairs"]
            now = clock()
            if merged["ok"]:
                converged_at = now
                break
            probes_lost += len(merged["lost"])
        return ResilienceReport(
            event=event,
            started_at=started_at,
            converged_at=converged_at,
            sweeps=sweeps,
            probes_lost=probes_lost,
            pairs_per_sweep=pairs,
        )


def _merge_reachability(rows: "list[dict]") -> dict:
    merged = {
        "pairs": sum(row["pairs"] for row in rows),
        "answered": sum(row["answered"] for row in rows),
        "lost": sorted(
            tuple(pair) for row in rows for pair in row["lost"]
        ),
    }
    merged["ok"] = not merged["lost"]
    return merged
