"""Fabric-scale scenarios: declarative multi-switch topologies.

Every scenario up to PR 4 migrated exactly one legacy switch behind one
HARMLESS server.  This package opens the network-wide axis: one call
builds an enterprise fabric of legacy switches — leaf-spine, ring or
campus tree — complete with inter-switch trunk links, per-edge hosts,
a reserved HARMLESS trunk port on every switch and a management plane
(SNMP agent + vendor driver) per device, ready for
:class:`repro.core.manager.HarmlessFleet` to migrate wave by wave.
"""

from repro.fabric.partition import (
    FabricPartition,
    ShardedFabric,
    ShardedFleet,
    partition_fabric,
)
from repro.fabric.topology import (
    Fabric,
    FabricSite,
    StubDriver,
    StubHost,
    campus_fabric,
    enable_fabric_stp,
    leaf_spine_fabric,
    ring_fabric,
    slim_replica_build,
)

__all__ = [
    "Fabric",
    "FabricSite",
    "FabricPartition",
    "ShardedFabric",
    "ShardedFleet",
    "StubDriver",
    "StubHost",
    "enable_fabric_stp",
    "leaf_spine_fabric",
    "ring_fabric",
    "campus_fabric",
    "partition_fabric",
    "slim_replica_build",
]
