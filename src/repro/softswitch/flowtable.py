"""Flow tables: priority-ordered masked matching with timeouts.

Lookup is two-tier, the slow-path half of the OVS-style datapath:

* **exact buckets** — entries whose match constrains whole fields (no
  partial masks) are grouped by their field-set; each group is a hash
  table from the value tuple (pulled straight out of a packet's flow
  key) to the entries carrying those values.  One dict probe per
  distinct field-set replaces a scan over every exact entry.
* **staged subtables** — entries with partial masks are grouped into
  one :class:`Subtable` per distinct mask-set (the canonical
  ``Match.mask_key()`` fingerprint).  Each subtable is a hash table
  from the masked value tuple to the entries carrying those values, so
  a masked lookup costs one probe per *distinct mask-set* instead of
  one test per masked entry.  Subtables are searched in descending
  max-priority order with early termination, OVS's staged-lookup
  trick.

The candidates from both tiers are arbitrated by the same total order
the seed used, so lookup results are bit-identical to a pure linear
scan (``linear_lookup`` keeps that reference implementation alive for
differential tests and benchmarks).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Iterator, Optional

from repro.openflow.instructions import Instruction
from repro.openflow.match import Match
from repro.openflow.packetview import FIELD_INDEX, PacketView


@dataclass
class FlowEntry:
    """One installed flow."""

    match: Match
    priority: int = 0x8000
    instructions: list[Instruction] = field(default_factory=list)
    cookie: int = 0
    idle_timeout: float = 0.0  # seconds; 0 = never
    hard_timeout: float = 0.0
    send_flow_removed: bool = False
    installed_at: float = 0.0
    last_used_at: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    #: Install sequence number within the owning table; makes the sort
    #: key below a total order even when two flows share a priority and
    #: an install timestamp (bulk pushes at migration time).
    seq: int = 0
    #: (-priority, installed_at, seq) — the table-wide arbitration
    #: order; assigned by FlowTable.install.
    sort_key: "tuple[int, float, int]" = (0, 0.0, 0)

    def touch(self, now: float, wire_bytes: int) -> None:
        self.packet_count += 1
        self.byte_count += wire_bytes
        self.last_used_at = now

    def is_expired(self, now: float) -> bool:
        if self.hard_timeout and now - self.installed_at >= self.hard_timeout:
            return True
        if self.idle_timeout and now - self.last_used_at >= self.idle_timeout:
            return True
        return False

    def describe(self) -> str:
        verbs = " ".join(str(instruction) for instruction in self.instructions)
        return (
            f"prio={self.priority} match[{self.match.describe()}] "
            f"-> {verbs or 'drop'} "
            f"(pkts={self.packet_count})"
        )


_SORT_KEY = attrgetter("sort_key")


class Subtable:
    """One staged bucket group: every masked entry sharing a mask-set.

    ``buckets`` maps the masked value tuple to the entries carrying
    those values, sorted by the table-wide arbitration order — within a
    bucket every entry matches exactly the same packets, so the first
    live one is the bucket's best candidate.  ``max_priority`` bounds
    what any entry in the subtable can contribute; the classifier sorts
    subtables on it and stops probing as soon as no remaining subtable
    can beat the best candidate found so far.
    """

    __slots__ = (
        "mask_set", "buckets", "max_priority", "_priority_counts", "seq", "hit_cell",
    )

    def __init__(self, mask_set: "tuple[tuple[int, int], ...]", seq: int) -> None:
        self.mask_set = mask_set
        self.buckets: "dict[tuple[int, ...], list[FlowEntry]]" = {}
        self.max_priority = -1
        #: Single-element profile counter: how often this subtable won a
        #: lookup.  A shared mutable cell (not a plain int) so compiled
        #: programs can bump the same counter the interpreter does; the
        #: datapath compiler orders its probe blocks by these counts.
        self.hit_cell = [0]
        self._priority_counts: dict[int, int] = {}
        #: Creation sequence — tie-breaks the staged sort so equal
        #: max-priority subtables keep a deterministic probe order.
        self.seq = seq

    def __len__(self) -> int:
        return sum(len(chain) for chain in self.buckets.values())

    def add(self, values: "tuple[int, ...]", entry: FlowEntry) -> None:
        chain = self.buckets.get(values)
        if chain is None:
            self.buckets[values] = [entry]
        else:
            bisect.insort(chain, entry, key=_SORT_KEY)
        count = self._priority_counts.get(entry.priority, 0)
        self._priority_counts[entry.priority] = count + 1
        if entry.priority > self.max_priority:
            self.max_priority = entry.priority

    def remove(self, values: "tuple[int, ...]", entry: FlowEntry) -> None:
        chain = self.buckets[values]
        chain.remove(entry)
        if not chain:
            del self.buckets[values]
        count = self._priority_counts[entry.priority] - 1
        if count:
            self._priority_counts[entry.priority] = count
        else:
            del self._priority_counts[entry.priority]
            if entry.priority == self.max_priority:
                self.max_priority = (
                    max(self._priority_counts) if self._priority_counts else -1
                )

    def probe(
        self, key: "tuple[int | None, ...]", now: float
    ) -> Optional[FlowEntry]:
        """The subtable's best live entry matching *key*, if any."""
        values = []
        for slot, mask in self.mask_set:
            packet_value = key[slot]
            if packet_value is None:
                return None  # a constraint on an absent field never matches
            values.append(packet_value & mask)
        chain = self.buckets.get(tuple(values))
        if not chain:
            return None
        for entry in chain:
            if not entry.is_expired(now):
                return entry
        return None


class FlowTable:
    """One numbered table of a pipeline.

    Entries are kept sorted by descending priority; lookup returns the
    highest-priority matching entry.  Ties at equal priority resolve to
    the earliest-installed entry (OpenFlow leaves this undefined;
    deterministic beats undefined for differential testing).

    The table itself does no cache bookkeeping: the datapath
    explicitly invalidates its microflow cache at every mutation site
    (FlowMod, GroupMod, expiry sweep).
    """

    def __init__(self, table_id: int) -> None:
        self.table_id = table_id
        self._entries: list[FlowEntry] = []
        self._seq = 0
        #: field-set -> {value tuple -> entries sorted by sort_key}
        self._exact: dict[tuple[str, ...], dict[tuple[int, ...], list[FlowEntry]]] = {}
        #: field-set -> flow-key slots probed for that bucket group
        self._exact_slots: dict[tuple[str, ...], tuple[int, ...]] = {}
        #: field-set -> single-element profile counter (see Subtable.hit_cell)
        self._exact_hit_cells: dict[tuple[str, ...], list[int]] = {}
        #: mask-set fingerprint -> staged subtable of masked entries
        self._subtables: "dict[tuple[tuple[int, int], ...], Subtable]" = {}
        #: subtables sorted by (-max_priority, seq); resorted lazily
        self._staged: list[Subtable] = []
        self._staged_dirty = False
        self._subtable_seq = 0
        self.lookups = 0
        self.matches = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._entries)

    # ------------------------------------------------------------ mutation

    def install(self, entry: FlowEntry, now: float) -> None:
        """Add *entry*, replacing an existing identical (match, priority)."""
        entry.installed_at = now
        entry.last_used_at = now
        existing = self._find_identical(entry)
        if existing is not None:
            self._remove(existing)
        entry.seq = self._seq
        self._seq += 1
        entry.sort_key = (-entry.priority, entry.installed_at, entry.seq)
        bisect.insort(self._entries, entry, key=_SORT_KEY)
        self._index_add(entry)

    def _find_identical(self, entry: FlowEntry) -> Optional[FlowEntry]:
        """The installed entry with the same (match, priority), if any.

        Probes only the tier the entry would land in — an equal Match
        has an equal exact_key, so an exact entry's duplicate can only
        sit in its own value bucket and a masked entry's only on the
        masked list.  Keeps bulk pushes O(log n) per FlowMod instead of
        re-scanning the whole table.
        """
        exact = entry.match.exact_key()
        if exact is None:
            mask_set, values = entry.match.mask_key()
            subtable = self._subtables.get(mask_set)
            candidates = subtable.buckets.get(values, ()) if subtable else ()
        else:
            names, values = exact
            candidates = self._exact.get(names, {}).get(values, ())
        for existing in candidates:
            if existing.priority == entry.priority and existing.match == entry.match:
                return existing
        return None

    def _remove(self, entry: FlowEntry) -> None:
        index = bisect.bisect_left(self._entries, entry.sort_key, key=_SORT_KEY)
        while self._entries[index] is not entry:
            index += 1
        del self._entries[index]
        self._index_remove(entry)

    def _index_add(self, entry: FlowEntry) -> None:
        exact = entry.match.exact_key()
        if exact is None:
            mask_set, values = entry.match.mask_key()
            subtable = self._subtables.get(mask_set)
            if subtable is None:
                subtable = Subtable(mask_set, self._subtable_seq)
                self._subtable_seq += 1
                self._subtables[mask_set] = subtable
                self._staged.append(subtable)
            subtable.add(values, entry)
            self._staged_dirty = True
            return
        names, values = exact
        buckets = self._exact.get(names)
        if buckets is None:
            buckets = self._exact[names] = {}
            self._exact_slots[names] = tuple(FIELD_INDEX[name] for name in names)
            self._exact_hit_cells[names] = [0]
        chain = buckets.get(values)
        if chain is None:
            buckets[values] = [entry]
        else:
            bisect.insort(chain, entry, key=_SORT_KEY)

    def _index_remove(self, entry: FlowEntry) -> None:
        exact = entry.match.exact_key()
        if exact is None:
            mask_set, values = entry.match.mask_key()
            subtable = self._subtables[mask_set]
            subtable.remove(values, entry)
            if not subtable.buckets:
                del self._subtables[mask_set]
                self._staged.remove(subtable)
            else:
                self._staged_dirty = True
            return
        names, values = exact
        buckets = self._exact[names]
        chain = buckets[values]
        chain.remove(entry)
        if not chain:
            del buckets[values]
            if not buckets:
                del self._exact[names]
                del self._exact_slots[names]
                del self._exact_hit_cells[names]

    # ------------------------------------------------------------- lookup

    def lookup(self, view: PacketView, now: float) -> Optional[FlowEntry]:
        """Highest-priority live entry matching *view* (two-tier)."""
        self.lookups += 1
        entry = self._classify(view.flow_key(), now)
        if entry is not None:
            self.matches += 1
        return entry

    def _classify(
        self, key: "tuple[int | None, ...]", now: float
    ) -> Optional[FlowEntry]:
        best: "FlowEntry | None" = None
        best_cell: "list[int] | None" = None
        for names, buckets in self._exact.items():
            slots = self._exact_slots[names]
            chain = buckets.get(tuple(key[slot] for slot in slots))
            if not chain:
                continue
            for entry in chain:
                if entry.is_expired(now):
                    continue
                if best is None or entry.sort_key < best.sort_key:
                    best = entry
                    best_cell = self._exact_hit_cells[names]
                break  # chain is sorted: first live one is its best
        for subtable in self._staged_in_order():
            if best is not None and -subtable.max_priority > best.sort_key[0]:
                break  # staged order: no remaining subtable can win
            entry = subtable.probe(key, now)
            if entry is not None and (best is None or entry.sort_key < best.sort_key):
                best = entry
                best_cell = subtable.hit_cell
        if best_cell is not None:
            best_cell[0] += 1
        return best

    def _staged_in_order(self) -> "list[Subtable]":
        """Subtables sorted by (-max_priority, seq), re-sorted lazily."""
        if self._staged_dirty:
            self._staged.sort(key=lambda s: (-s.max_priority, s.seq))
            self._staged_dirty = False
        return self._staged

    @property
    def subtable_count(self) -> int:
        """How many distinct mask-sets the masked tier holds."""
        return len(self._subtables)

    def staged_order(self) -> "list[tuple[tuple[int, int], ...]]":
        """Mask-sets in probe order (test/bench introspection)."""
        return [subtable.mask_set for subtable in self._staged_in_order()]

    # ------------------------------------------------- compiler introspection

    def used_slots(self) -> frozenset[int]:
        """Union of flow-key slots any installed match reads.

        The datapath compiler shrinks its specialized extractor to this
        set, so a table matching three fields costs three field decodes.
        Derived from the index structures (one union per field-set /
        mask-set, not per entry), so it stays O(#distinct shapes) even
        for 10k-flow tables.
        """
        slots: set[int] = set()
        for slot_tuple in self._exact_slots.values():
            slots.update(slot_tuple)
        for mask_set in self._subtables:
            slots.update(slot for slot, _ in mask_set)
        return frozenset(slots)

    def exact_probe_groups(
        self,
    ) -> "list[tuple[tuple[int, ...], dict[tuple[int, ...], list[FlowEntry]], int, list[int]]]":
        """(probe slots, value buckets, max priority, hit cell) per exact field-set.

        The returned buckets are the live index structures — the
        compiler bakes references to them into a specialized program and
        relies on the datapath discarding that program before the next
        packet whenever the table mutates.  The hit cell is the shared
        profile counter both tiers bump when the field-set wins.
        """
        groups = []
        for names, buckets in self._exact.items():
            max_priority = max(
                chain[0].priority for chain in buckets.values()
            )
            groups.append(
                (self._exact_slots[names], buckets, max_priority,
                 self._exact_hit_cells[names])
            )
        return groups

    def profile_hits(self) -> "dict[tuple, int]":
        """Observed win counts per probe shape (test/bench introspection).

        Keys are ``("exact", field names)`` and ``("masked", mask set)``;
        values are how often a lookup was won by that shape since the
        shape was first installed.
        """
        hits: "dict[tuple, int]" = {}
        for names, cell in self._exact_hit_cells.items():
            hits[("exact", names)] = cell[0]
        for mask_set, subtable in self._subtables.items():
            hits[("masked", mask_set)] = subtable.hit_cell[0]
        return hits

    def subtables_in_order(self) -> "list[Subtable]":
        """Staged subtables in probe order (live objects, read-only)."""
        return list(self._staged_in_order())

    def linear_lookup(self, view: PacketView, now: float) -> Optional[FlowEntry]:
        """The seed O(n) scan, kept as the differential-test reference."""
        self.lookups += 1
        for entry in self._entries:
            if entry.is_expired(now):
                continue
            if entry.match.matches(view):
                self.matches += 1
                return entry
        return None

    # --------------------------------------------------------- bulk removal

    def delete(
        self,
        match: Match,
        priority: "int | None" = None,
        strict: bool = False,
        cookie: "int | None" = None,
        cookie_mask: int = 0,
    ) -> list[FlowEntry]:
        """Remove matching entries, returning them (for flow-removed).

        Strict: exact (match, priority).  Non-strict: every entry whose
        match is a subset of *match* (the behaviour switches implement).
        """
        removed = []
        kept = []
        for entry in self._entries:
            if cookie_mask and (entry.cookie & cookie_mask) != (
                (cookie or 0) & cookie_mask
            ):
                kept.append(entry)
                continue
            if strict:
                doomed = entry.priority == priority and entry.match == match
            else:
                doomed = entry.match.is_subset_of(match)
            if doomed:
                removed.append(entry)
            else:
                kept.append(entry)
        if removed:
            self._entries = kept
            for entry in removed:
                self._index_remove(entry)
        return removed

    def expire(self, now: float) -> list[FlowEntry]:
        """Remove and return all timed-out entries."""
        expired = [entry for entry in self._entries if entry.is_expired(now)]
        if expired:
            self._entries = [
                entry for entry in self._entries if not entry.is_expired(now)
            ]
            for entry in expired:
                self._index_remove(entry)
        return expired

    def dump(self) -> str:
        """Readable flow-table listing (the Fig. 1 'Flow table of SS_1')."""
        lines = [f"table {self.table_id} ({len(self._entries)} flows):"]
        lines.extend(f"  {entry.describe()}" for entry in self._entries)
        return "\n".join(lines)
