"""Flow tables: priority-ordered masked matching with timeouts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.openflow.instructions import Instruction
from repro.openflow.match import Match
from repro.openflow.packetview import PacketView


@dataclass
class FlowEntry:
    """One installed flow."""

    match: Match
    priority: int = 0x8000
    instructions: list[Instruction] = field(default_factory=list)
    cookie: int = 0
    idle_timeout: float = 0.0  # seconds; 0 = never
    hard_timeout: float = 0.0
    send_flow_removed: bool = False
    installed_at: float = 0.0
    last_used_at: float = 0.0
    packet_count: int = 0
    byte_count: int = 0

    def touch(self, now: float, wire_bytes: int) -> None:
        self.packet_count += 1
        self.byte_count += wire_bytes
        self.last_used_at = now

    def is_expired(self, now: float) -> bool:
        if self.hard_timeout and now - self.installed_at >= self.hard_timeout:
            return True
        if self.idle_timeout and now - self.last_used_at >= self.idle_timeout:
            return True
        return False

    def describe(self) -> str:
        verbs = " ".join(str(instruction) for instruction in self.instructions)
        return (
            f"prio={self.priority} match[{self.match.describe()}] "
            f"-> {verbs or 'drop'} "
            f"(pkts={self.packet_count})"
        )


class FlowTable:
    """One numbered table of a pipeline.

    Entries are kept sorted by descending priority; lookup returns the
    highest-priority matching entry.  Ties at equal priority resolve to
    the earliest-installed entry (OpenFlow leaves this undefined;
    deterministic beats undefined for differential testing).
    """

    def __init__(self, table_id: int) -> None:
        self.table_id = table_id
        self._entries: list[FlowEntry] = []
        self.lookups = 0
        self.matches = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._entries)

    def install(self, entry: FlowEntry, now: float) -> None:
        """Add *entry*, replacing an existing identical (match, priority)."""
        entry.installed_at = now
        entry.last_used_at = now
        self._entries = [
            existing
            for existing in self._entries
            if not (
                existing.priority == entry.priority and existing.match == entry.match
            )
        ]
        self._entries.append(entry)
        self._entries.sort(key=lambda e: (-e.priority, e.installed_at))

    def lookup(self, view: PacketView, now: float) -> Optional[FlowEntry]:
        """Highest-priority live entry matching *view*."""
        self.lookups += 1
        for entry in self._entries:
            if entry.is_expired(now):
                continue
            if entry.match.matches(view):
                self.matches += 1
                return entry
        return None

    def delete(
        self,
        match: Match,
        priority: "int | None" = None,
        strict: bool = False,
        cookie: "int | None" = None,
        cookie_mask: int = 0,
    ) -> list[FlowEntry]:
        """Remove matching entries, returning them (for flow-removed).

        Strict: exact (match, priority).  Non-strict: every entry whose
        match is a subset of *match* (the behaviour switches implement).
        """
        removed = []
        kept = []
        for entry in self._entries:
            if cookie_mask and (entry.cookie & cookie_mask) != (
                (cookie or 0) & cookie_mask
            ):
                kept.append(entry)
                continue
            if strict:
                doomed = entry.priority == priority and entry.match == match
            else:
                doomed = entry.match.is_subset_of(match)
            if doomed:
                removed.append(entry)
            else:
                kept.append(entry)
        self._entries = kept
        return removed

    def expire(self, now: float) -> list[FlowEntry]:
        """Remove and return all timed-out entries."""
        expired = [entry for entry in self._entries if entry.is_expired(now)]
        if expired:
            self._entries = [
                entry for entry in self._entries if not entry.is_expired(now)
            ]
        return expired

    def dump(self) -> str:
        """Readable flow-table listing (the Fig. 1 'Flow table of SS_1')."""
        lines = [f"table {self.table_id} ({len(self._entries)} flows):"]
        lines.extend(f"  {entry.describe()}" for entry in self._entries)
        return "\n".join(lines)
