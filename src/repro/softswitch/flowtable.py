"""Flow tables: priority-ordered masked matching with timeouts.

Lookup is two-tier, the slow-path half of the OVS-style datapath:

* **exact buckets** — entries whose match constrains whole fields (no
  partial masks) are grouped by their field-set; each group is a hash
  table from the value tuple (pulled straight out of a packet's flow
  key) to the entries carrying those values.  One dict probe per
  distinct field-set replaces a scan over every exact entry.
* **masked fallback** — entries with partial masks stay on a
  priority-ordered linear list, exactly the seed algorithm.

The candidates from both tiers are arbitrated by the same total order
the seed used, so lookup results are bit-identical to a pure linear
scan (``linear_lookup`` keeps that reference implementation alive for
differential tests and benchmarks).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Iterator, Optional

from repro.openflow.instructions import Instruction
from repro.openflow.match import Match
from repro.openflow.packetview import FIELD_INDEX, PacketView


@dataclass
class FlowEntry:
    """One installed flow."""

    match: Match
    priority: int = 0x8000
    instructions: list[Instruction] = field(default_factory=list)
    cookie: int = 0
    idle_timeout: float = 0.0  # seconds; 0 = never
    hard_timeout: float = 0.0
    send_flow_removed: bool = False
    installed_at: float = 0.0
    last_used_at: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    #: Install sequence number within the owning table; makes the sort
    #: key below a total order even when two flows share a priority and
    #: an install timestamp (bulk pushes at migration time).
    seq: int = 0
    #: (-priority, installed_at, seq) — the table-wide arbitration
    #: order; assigned by FlowTable.install.
    sort_key: "tuple[int, float, int]" = (0, 0.0, 0)

    def touch(self, now: float, wire_bytes: int) -> None:
        self.packet_count += 1
        self.byte_count += wire_bytes
        self.last_used_at = now

    def is_expired(self, now: float) -> bool:
        if self.hard_timeout and now - self.installed_at >= self.hard_timeout:
            return True
        if self.idle_timeout and now - self.last_used_at >= self.idle_timeout:
            return True
        return False

    def describe(self) -> str:
        verbs = " ".join(str(instruction) for instruction in self.instructions)
        return (
            f"prio={self.priority} match[{self.match.describe()}] "
            f"-> {verbs or 'drop'} "
            f"(pkts={self.packet_count})"
        )


_SORT_KEY = attrgetter("sort_key")


class FlowTable:
    """One numbered table of a pipeline.

    Entries are kept sorted by descending priority; lookup returns the
    highest-priority matching entry.  Ties at equal priority resolve to
    the earliest-installed entry (OpenFlow leaves this undefined;
    deterministic beats undefined for differential testing).

    The table itself does no cache bookkeeping: the datapath
    explicitly invalidates its microflow cache at every mutation site
    (FlowMod, GroupMod, expiry sweep).
    """

    def __init__(self, table_id: int) -> None:
        self.table_id = table_id
        self._entries: list[FlowEntry] = []
        self._seq = 0
        #: field-set -> {value tuple -> entries sorted by sort_key}
        self._exact: dict[tuple[str, ...], dict[tuple[int, ...], list[FlowEntry]]] = {}
        #: field-set -> flow-key slots probed for that bucket group
        self._exact_slots: dict[tuple[str, ...], tuple[int, ...]] = {}
        #: entries with partial masks, sorted by sort_key (seed order)
        self._masked: list[FlowEntry] = []
        self.lookups = 0
        self.matches = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._entries)

    # ------------------------------------------------------------ mutation

    def install(self, entry: FlowEntry, now: float) -> None:
        """Add *entry*, replacing an existing identical (match, priority)."""
        entry.installed_at = now
        entry.last_used_at = now
        existing = self._find_identical(entry)
        if existing is not None:
            self._remove(existing)
        entry.seq = self._seq
        self._seq += 1
        entry.sort_key = (-entry.priority, entry.installed_at, entry.seq)
        bisect.insort(self._entries, entry, key=_SORT_KEY)
        self._index_add(entry)

    def _find_identical(self, entry: FlowEntry) -> Optional[FlowEntry]:
        """The installed entry with the same (match, priority), if any.

        Probes only the tier the entry would land in — an equal Match
        has an equal exact_key, so an exact entry's duplicate can only
        sit in its own value bucket and a masked entry's only on the
        masked list.  Keeps bulk pushes O(log n) per FlowMod instead of
        re-scanning the whole table.
        """
        exact = entry.match.exact_key()
        if exact is None:
            candidates = self._masked
        else:
            names, values = exact
            candidates = self._exact.get(names, {}).get(values, ())
        for existing in candidates:
            if existing.priority == entry.priority and existing.match == entry.match:
                return existing
        return None

    def _remove(self, entry: FlowEntry) -> None:
        index = bisect.bisect_left(self._entries, entry.sort_key, key=_SORT_KEY)
        while self._entries[index] is not entry:
            index += 1
        del self._entries[index]
        self._index_remove(entry)

    def _index_add(self, entry: FlowEntry) -> None:
        exact = entry.match.exact_key()
        if exact is None:
            bisect.insort(self._masked, entry, key=_SORT_KEY)
            return
        names, values = exact
        buckets = self._exact.get(names)
        if buckets is None:
            buckets = self._exact[names] = {}
            self._exact_slots[names] = tuple(FIELD_INDEX[name] for name in names)
        chain = buckets.get(values)
        if chain is None:
            buckets[values] = [entry]
        else:
            bisect.insort(chain, entry, key=_SORT_KEY)

    def _index_remove(self, entry: FlowEntry) -> None:
        exact = entry.match.exact_key()
        if exact is None:
            self._masked.remove(entry)
            return
        names, values = exact
        buckets = self._exact[names]
        chain = buckets[values]
        chain.remove(entry)
        if not chain:
            del buckets[values]
            if not buckets:
                del self._exact[names]
                del self._exact_slots[names]

    # ------------------------------------------------------------- lookup

    def lookup(self, view: PacketView, now: float) -> Optional[FlowEntry]:
        """Highest-priority live entry matching *view* (two-tier)."""
        self.lookups += 1
        entry = self._classify(view.flow_key(), now)
        if entry is not None:
            self.matches += 1
        return entry

    def _classify(
        self, key: "tuple[int | None, ...]", now: float
    ) -> Optional[FlowEntry]:
        best: "FlowEntry | None" = None
        for names, buckets in self._exact.items():
            slots = self._exact_slots[names]
            chain = buckets.get(tuple(key[slot] for slot in slots))
            if not chain:
                continue
            for entry in chain:
                if entry.is_expired(now):
                    continue
                if best is None or entry.sort_key < best.sort_key:
                    best = entry
                break  # chain is sorted: first live one is its best
        for entry in self._masked:
            if best is not None and entry.sort_key > best.sort_key:
                break  # sorted: no later masked entry can win
            if entry.is_expired(now):
                continue
            if entry.match.matches_key(key):
                return entry  # beats best by order, ends the search
        return best

    def linear_lookup(self, view: PacketView, now: float) -> Optional[FlowEntry]:
        """The seed O(n) scan, kept as the differential-test reference."""
        self.lookups += 1
        for entry in self._entries:
            if entry.is_expired(now):
                continue
            if entry.match.matches(view):
                self.matches += 1
                return entry
        return None

    # --------------------------------------------------------- bulk removal

    def delete(
        self,
        match: Match,
        priority: "int | None" = None,
        strict: bool = False,
        cookie: "int | None" = None,
        cookie_mask: int = 0,
    ) -> list[FlowEntry]:
        """Remove matching entries, returning them (for flow-removed).

        Strict: exact (match, priority).  Non-strict: every entry whose
        match is a subset of *match* (the behaviour switches implement).
        """
        removed = []
        kept = []
        for entry in self._entries:
            if cookie_mask and (entry.cookie & cookie_mask) != (
                (cookie or 0) & cookie_mask
            ):
                kept.append(entry)
                continue
            if strict:
                doomed = entry.priority == priority and entry.match == match
            else:
                doomed = entry.match.is_subset_of(match)
            if doomed:
                removed.append(entry)
            else:
                kept.append(entry)
        if removed:
            self._entries = kept
            for entry in removed:
                self._index_remove(entry)
        return removed

    def expire(self, now: float) -> list[FlowEntry]:
        """Remove and return all timed-out entries."""
        expired = [entry for entry in self._entries if entry.is_expired(now)]
        if expired:
            self._entries = [
                entry for entry in self._entries if not entry.is_expired(now)
            ]
            for entry in expired:
                self._index_remove(entry)
        return expired

    def dump(self) -> str:
        """Readable flow-table listing (the Fig. 1 'Flow table of SS_1')."""
        lines = [f"table {self.table_id} ({len(self._entries)} flows):"]
        lines.extend(f"  {entry.describe()}" for entry in self._entries)
        return "\n".join(lines)
