"""Per-packet CPU cost model for the software datapath.

The paper argues HARMLESS adds no major performance penalty versus
running the same software switch natively.  To evaluate that in
simulation we charge each packet a CPU time computed from what the
pipeline actually did: table lookups, actions executed, VLAN
push/pops.  Constants are calibrated so a single core forwards
~10-15 Mpps through a one-table pipeline, matching the throughput
ESwitch reports for compiled OpenFlow pipelines on DPDK [Molnar et al.,
SIGCOMM 2016].
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatapathCostModel:
    """Nanosecond costs charged per packet by pipeline stage.

    ``cost(...)`` returns seconds, ready for simulator scheduling.
    """

    #: Fixed RX+TX overhead (driver, classification setup).
    base_ns: float = 40.0
    #: One flow-table lookup (hash + priority scan amortised).
    lookup_ns: float = 20.0
    #: One generic action execution (output, set-field...).
    action_ns: float = 5.0
    #: Extra for VLAN push/pop (header move).
    vlan_op_ns: float = 8.0
    #: Group bucket selection (hash over fields).
    group_ns: float = 12.0
    #: Crossing a patch port into another switch instance.
    patch_ns: float = 15.0

    def cost_s(
        self,
        lookups: int = 1,
        actions: int = 1,
        vlan_ops: int = 0,
        group_selections: int = 0,
        patch_hops: int = 0,
    ) -> float:
        """Total CPU seconds for one packet with the given stage counts."""
        total_ns = (
            self.base_ns
            + self.lookup_ns * lookups
            + self.action_ns * actions
            + self.vlan_op_ns * vlan_ops
            + self.group_ns * group_selections
            + self.patch_ns * patch_hops
        )
        return total_ns * 1e-9

    def peak_pps(
        self,
        lookups: int = 1,
        actions: int = 1,
        vlan_ops: int = 0,
        group_selections: int = 0,
        patch_hops: int = 0,
    ) -> float:
        """Single-core packets/second ceiling for a given pipeline shape.

        Accepts the same stage counts as :meth:`cost_s`, so ceilings for
        group- and patch-port pipelines are charged for those stages too.
        """
        return 1.0 / self.cost_s(
            lookups=lookups,
            actions=actions,
            vlan_ops=vlan_ops,
            group_selections=group_selections,
            patch_hops=patch_hops,
        )

    @classmethod
    def zero(cls) -> "DatapathCostModel":
        """The all-zero model used by wall-clock (Python-level) benches.

        Keyword-safe against field additions, unlike spelling out every
        coefficient positionally at each call site.
        """
        return cls(
            base_ns=0.0,
            lookup_ns=0.0,
            action_ns=0.0,
            vlan_op_ns=0.0,
            group_ns=0.0,
            patch_ns=0.0,
        )


#: The default, ESwitch-calibrated model (~13 Mpps for 1 lookup + 1 output).
ESWITCH_COST_MODEL = DatapathCostModel()

#: A slower, OVS-megaflow-miss-like model used in ablation benchmarks.
GENERIC_SOFTSWITCH_COST_MODEL = DatapathCostModel(
    base_ns=90.0,
    lookup_ns=60.0,
    action_ns=10.0,
    vlan_op_ns=12.0,
    group_ns=25.0,
    patch_ns=30.0,
)
