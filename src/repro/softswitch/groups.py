"""Group table: all / select / indirect groups.

Select groups implement the weighted-hash bucket choice the
load-balancer use case depends on: the hash is computed over the
packet's flow key so one flow always lands on one backend (connection
affinity), while distinct flows spread by bucket weight.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.openflow.consts import OFPGT_ALL, OFPGT_INDIRECT, OFPGT_SELECT
from repro.openflow.messages import Bucket
from repro.openflow.packetview import FIELD_INDEX, PacketView

#: Fields hashed for select-group bucket choice (5-tuple-ish).
SELECT_HASH_FIELDS = (
    "eth_src",
    "eth_dst",
    "ipv4_src",
    "ipv4_dst",
    "ip_proto",
    "tcp_src",
    "tcp_dst",
    "udp_src",
    "udp_dst",
)


@dataclass
class GroupEntry:
    """One group with its buckets and counters."""

    group_id: int
    group_type: int
    buckets: list[Bucket] = field(default_factory=list)
    packet_count: int = 0
    bucket_packet_counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.group_type not in (OFPGT_ALL, OFPGT_SELECT, OFPGT_INDIRECT):
            raise ValueError(f"unsupported group type {self.group_type}")
        if self.group_type == OFPGT_INDIRECT and len(self.buckets) != 1:
            raise ValueError("indirect groups take exactly one bucket")
        if not self.bucket_packet_counts:
            self.bucket_packet_counts = [0] * len(self.buckets)

    def select_bucket(
        self, view: PacketView, hash_fields: "tuple[str, ...]" = SELECT_HASH_FIELDS
    ) -> Optional[int]:
        """Weighted-hash bucket index for *view* (None if no buckets)."""
        return self.select_bucket_for_key(view.flow_key(), hash_fields)

    def select_bucket_for_key(
        self,
        key: "tuple[Optional[int], ...]",
        hash_fields: "tuple[str, ...]" = SELECT_HASH_FIELDS,
    ) -> Optional[int]:
        """Bucket index for a full 14-slot flow *key*.

        The hash reads only *hash_fields* slots, so any key whose
        hash-field slots carry the packet's decoded values — including
        an :func:`~repro.openflow.packetview.expand_key`-rehydrated
        shrunk key — selects the same bucket as the full decode.  The
        compiled tier bakes bucket choices per flow key on this basis.
        """
        if not self.buckets:
            return None
        key_material = []
        for name in hash_fields:
            value = key[FIELD_INDEX[name]]
            if value is not None:
                key_material.append(f"{name}={value}")
        digest = hashlib.sha256(";".join(key_material).encode()).digest()
        point = int.from_bytes(digest[:8], "big")
        total_weight = sum(max(bucket.weight, 1) for bucket in self.buckets)
        slot = point % total_weight
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            cumulative += max(bucket.weight, 1)
            if slot < cumulative:
                return index
        return len(self.buckets) - 1


class GroupTable:
    """All groups of one datapath."""

    def __init__(self) -> None:
        self._groups: dict[int, GroupEntry] = {}

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._groups

    def add(self, group_id: int, group_type: int, buckets: list[Bucket]) -> None:
        if group_id in self._groups:
            raise ValueError(f"group {group_id} already exists")
        self._groups[group_id] = GroupEntry(
            group_id=group_id, group_type=group_type, buckets=list(buckets)
        )

    def modify(self, group_id: int, group_type: int, buckets: list[Bucket]) -> None:
        if group_id not in self._groups:
            raise KeyError(f"group {group_id} does not exist")
        old = self._groups[group_id]
        self._groups[group_id] = GroupEntry(
            group_id=group_id,
            group_type=group_type,
            buckets=list(buckets),
            packet_count=old.packet_count,
        )

    def delete(self, group_id: int) -> None:
        self._groups.pop(group_id, None)

    def get(self, group_id: int) -> Optional[GroupEntry]:
        return self._groups.get(group_id)

    def has_select_groups(self) -> bool:
        """True when any select group is installed (compiler probe:
        decides whether the shrunk flow key must carry hash slots)."""
        return any(
            entry.group_type == OFPGT_SELECT for entry in self._groups.values()
        )

    def dump(self) -> str:
        lines = [f"groups ({len(self._groups)}):"]
        for group_id in sorted(self._groups):
            entry = self._groups[group_id]
            type_names = {OFPGT_ALL: "all", OFPGT_SELECT: "select", OFPGT_INDIRECT: "indirect"}
            buckets = "; ".join(
                f"w={bucket.weight}:"
                + ",".join(str(action) for action in bucket.actions)
                for bucket in entry.buckets
            )
            lines.append(
                f"  group {group_id} type={type_names[entry.group_type]} [{buckets}]"
            )
        return "\n".join(lines)
