"""Software OpenFlow switch (the ESwitch/DPDK stand-in).

A full OpenFlow 1.3 datapath: multiple flow tables with priority and
masked matching, apply/write action semantics, select/all/indirect
groups (select drives the load-balancer use case), flow timeouts with
flow-removed notifications, per-flow/table/group counters, and a
controller channel that speaks serialised OpenFlow bytes.

Forwarding performance is modelled by :class:`DatapathCostModel`, whose
per-packet costs are calibrated to the ESwitch paper's reported
single-core throughput — this is what makes the throughput/latency
benchmarks meaningful (see DESIGN.md substitutions).
"""

from repro.softswitch.compiler import CompiledProgram, compile_datapath
from repro.softswitch.costmodel import DatapathCostModel, ESWITCH_COST_MODEL
from repro.softswitch.datapath import SoftSwitch
from repro.softswitch.fastpath import CachedPath, DatapathFlowCache
from repro.softswitch.flowtable import FlowEntry, FlowTable
from repro.softswitch.groups import GroupEntry, GroupTable

__all__ = [
    "SoftSwitch",
    "FlowTable",
    "FlowEntry",
    "GroupTable",
    "GroupEntry",
    "DatapathFlowCache",
    "CachedPath",
    "DatapathCostModel",
    "ESWITCH_COST_MODEL",
    "CompiledProgram",
    "compile_datapath",
]
