"""The software switch datapath: pipeline execution + control channel.

Pipeline semantics follow OpenFlow 1.3 §5: per-table lookup, apply-
actions executed immediately, write-actions accumulated into the action
set, goto-table to continue, and action-set execution (pops, pushes,
sets, then the one output/group) when the pipeline ends.  Table miss
drops unless a table-miss flow (priority 0, match-all) says otherwise —
exactly the behaviour a controller program sees on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.ethernet import EthernetFrame
from repro.netsim.node import Node, Port
from repro.netsim.simulator import Simulator
from repro.openflow import consts as c
from repro.openflow.actions import (
    Action,
    GroupAction,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
)
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    WriteActions,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PortStatsEntry,
    PortStatsReply,
    PortStatsRequest,
    parse_message,
)
from repro.openflow.packetview import PacketView
from repro.softswitch.compiler import CompiledProgram, compile_datapath
from repro.softswitch.costmodel import DatapathCostModel, ESWITCH_COST_MODEL
from repro.softswitch.fastpath import CachedPath, DatapathFlowCache
from repro.softswitch.flowtable import FlowEntry, FlowTable
from repro.softswitch.groups import SELECT_HASH_FIELDS, GroupTable

#: How often expired flows are swept (also checked lazily on lookup).
EXPIRY_SWEEP_INTERVAL_S = 1.0

#: Churn hysteresis for the specialized tier 0.  A FlowMod/GroupMod
#: marks the compiled program stale and the switch falls back to the
#: interpreted fast path; a recompile is attempted on the next packet
#: only once this many mods have accumulated...
RECOMPILE_AFTER_MODS = 64
#: ...or once the control plane has been quiet for this long (simulated
#: seconds), whichever happens first.  Both are per-switch attributes
#: (``recompile_after_mods`` / ``recompile_quiescent_s``) so tests and
#: benches can tighten or disable the hysteresis.
RECOMPILE_QUIESCENT_S = 0.05

#: Bound on the miss-suppression negative cache (see
#: ``miss_suppression_s``).  Cleared wholesale when full: the cache is
#: derived state and a cleared signature merely costs one extra
#: packet-in — memory stays bounded even under a randomised MAC storm.
MISS_CACHE_LIMIT = 4096


@dataclass
class PipelineStats:
    """What one packet's pipeline walk cost (for the cost model)."""

    lookups: int = 0
    actions: int = 0
    vlan_ops: int = 0
    group_selections: int = 0


class SoftSwitch(Node):
    """An OpenFlow 1.3 software switch.

    The controller talks to it through ``handle_message`` (serialised
    request bytes in, response list out) plus the ``to_controller``
    callback for asynchronous messages (packet-in, flow-removed) — the
    :mod:`repro.controller` channel wires both ends together with a
    configurable latency.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        datapath_id: int,
        num_tables: int = 4,
        cost_model: DatapathCostModel = ESWITCH_COST_MODEL,
        enable_fast_path: bool = True,
        enable_specialization: "bool | None" = None,
    ) -> None:
        super().__init__(sim, name)
        self.datapath_id = datapath_id
        self.tables = [FlowTable(table_id) for table_id in range(num_tables)]
        self.groups = GroupTable()
        #: Two-tier fast path: microflow cache over the bucketed
        #: classifier.  Disabled (None cache + seed linear scans) only
        #: for differential tests and the fastpath benchmark baseline.
        self.fast_path = enable_fast_path
        self.flow_cache: "Optional[DatapathFlowCache]" = (
            DatapathFlowCache() if enable_fast_path else None
        )
        #: Tier 0: the ESwitch-style specialized program compiled from
        #: the installed pipeline (see repro.softswitch.compiler).
        #: Defaults to following the fast-path switch so "interpreted
        #: seed" configurations stay fully interpreted.
        self.specialize = (
            enable_fast_path if enable_specialization is None else enable_specialization
        )
        self._program: "Optional[CompiledProgram]" = None
        self._pending_mods = 0
        self._last_mod_at = 0.0
        self.recompile_after_mods = RECOMPILE_AFTER_MODS
        self.recompile_quiescent_s = RECOMPILE_QUIESCENT_S
        self.program_compiles = 0
        self.program_compile_failures = 0
        self.program_invalidations = 0
        #: Frames served by the compiled tier 0 / by the interpreted
        #: fallback while specialization was enabled.
        self.specialized_frames = 0
        self.fallback_frames = 0
        #: Why the last compile fell back (first failing rule) or was
        #: rejected outright; None when the pipeline compiles clean.
        #: Written by :func:`repro.softswitch.compiler.compile_datapath`.
        self.compile_ineligible_reason: "Optional[str]" = None
        self.cost_model = cost_model
        # The construction-time model assignment is not a mutation; a
        # fresh switch should not recompile until a FlowMod lands.
        self._pending_mods = 0
        #: Fields hashed for select-group bucket choice.  The OpenFlow
        #: spec leaves the selection algorithm to the implementation;
        #: like OVS's selection_method this is switch configuration.
        self.select_hash_fields: tuple[str, ...] = SELECT_HASH_FIELDS
        self.to_controller: "Optional[Callable[[bytes], None]]" = None
        #: Optional flood meter mirroring legacy storm control on the
        #: migrated dataplane (a :class:`repro.legacy.stormcontrol
        #: .StormControl`, consulted per ingress port before an
        #: ``OFPP_FLOOD``/``OFPP_ALL`` expansion).  None — the default —
        #: leaves every tier bit-identical to a guard-free switch.
        #: Flood and controller outputs compile to per-entry FALLBACK
        #: decisions that route through :meth:`_interpret_one`, so the
        #: interpreter hook below covers the compiled tier too.
        self.flood_guard = None
        self.floods_suppressed = 0
        #: Miss-suppression window (simulated seconds): a packet-in
        #: whose (in_port, src, dst, vlan) signature was already sent
        #: within the window is dropped at the datapath instead of
        #: costing the controller another round trip.  0.0 — the
        #: default — disables the negative cache entirely.
        self.miss_suppression_s = 0.0
        self.packet_ins_suppressed = 0
        self._miss_seen: "dict[tuple, float]" = {}
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.packets_to_controller = 0
        #: Burst-path grouping statistics: frames arriving in bursts,
        #: bursts processed, and unique flow keys seen across bursts
        #: (``batch_frames / batch_unique_keys`` is the per-burst
        #: amortisation factor the BATCH bench reports).  Which key the
        #: serving tier distinguishes: the interpreted path counts full
        #: 14-slot flow keys, the compiled tier 0 counts its *shrunk*
        #: keys (only the slots the installed pipeline reads), so the
        #: statistic describes the grouping the active tier actually
        #: exploited.
        self.batch_bursts = 0
        self.batch_frames = 0
        self.batch_unique_keys = 0
        self.busy_until = 0.0
        self._xid = 0
        self._sweep_scheduled = False
        self._tx_buffer: list[tuple[int, EthernetFrame]] = []
        self._async_buffer: list[OpenFlowMessage] = []

    @property
    def cost_model(self) -> DatapathCostModel:
        return self._cost_model

    @cost_model.setter
    def cost_model(self, model: DatapathCostModel) -> None:
        self._cost_model = model
        # Compiled programs bake per-plan cost constants; swapping the
        # model on a live switch must force a recompile.
        self._mark_program_stale()
        #: True when every cost coefficient is zero (wall-clock benches):
        #: lets the charge path skip the per-packet cost_s() call while
        #: keeping busy_until bookkeeping bit-identical.  The exact-type
        #: check keeps subclasses with overridden cost_s() off the
        #: shortcut, and the setter keeps the flag honest when a bench
        #: swaps models on a live switch.
        self._cost_is_zero = type(model) is DatapathCostModel and not (
            model.base_ns
            or model.lookup_ns
            or model.action_ns
            or model.vlan_op_ns
            or model.group_ns
            or model.patch_ns
        )

    # ------------------------------------------------- datapath specialization

    def _mark_program_stale(self) -> None:
        """A control-plane mutation landed: fall back to the interpreter.

        The compiled program references the live classifier structures,
        so it must be discarded before the next packet.  Recompiling is
        deferred (churn hysteresis): the mod counter and timestamp feed
        :meth:`_active_program`'s trigger test.
        """
        self._pending_mods += 1
        self._last_mod_at = self.sim.now
        if self._program is not None:
            self._program = None
            self.program_invalidations += 1

    def reset_pipeline(self) -> None:
        """Power-cycle the forwarding state (switch crash/restart).

        Flow tables and groups are rebuilt empty — even the table-miss
        entry is gone until a controller reinstalls it, so every packet
        drops on miss, exactly like a rebooted switch before its
        handshake completes.  Both fast-path tiers are invalidated: the
        microflow cache is flushed and any compiled program discarded,
        since both memoise walks of tables that no longer exist.
        Forwarding counters survive (they model an external observer,
        not switch RAM).
        """
        self.tables = [FlowTable(table_id) for table_id in range(len(self.tables))]
        self.groups = GroupTable()
        if self.flow_cache is not None:
            self.flow_cache.invalidate()
        self._miss_seen.clear()
        self._mark_program_stale()

    @property
    def program(self) -> "Optional[CompiledProgram]":
        """The currently-active specialized program, if any (read-only)."""
        return self._program

    def _active_program(self) -> "Optional[CompiledProgram]":
        """The current compiled program, recompiling when hysteresis allows.

        Stale programs are never returned — ``_mark_program_stale``
        drops them synchronously — so the only question here is whether
        the accumulated mods justify paying for a recompile: either
        ``recompile_after_mods`` mods have piled up, or the control
        plane has been quiet for ``recompile_quiescent_s``.  A pipeline
        the compiler rejects leaves the switch interpreted (and charges
        nothing further) until the next mutation.
        """
        program = self._program
        if program is not None:
            return program
        if not self._pending_mods:
            return None
        if (
            self._pending_mods < self.recompile_after_mods
            and self.sim.now - self._last_mod_at < self.recompile_quiescent_s
        ):
            return None
        self._pending_mods = 0
        program = compile_datapath(self)
        if program is None:
            self.program_compile_failures += 1
        else:
            self.program_compiles += 1
            self._program = program
        return program

    def stats(self) -> dict:
        """Datapath counters: forwarding, specialization, microflow cache."""
        return {
            "packets_forwarded": self.packets_forwarded,
            "packets_dropped": self.packets_dropped,
            "packets_to_controller": self.packets_to_controller,
            "floods_suppressed": self.floods_suppressed,
            "packet_ins_suppressed": self.packet_ins_suppressed,
            "specialization": {
                "enabled": self.specialize,
                "active": self._program is not None,
                "compiles": self.program_compiles,
                "compile_failures": self.program_compile_failures,
                "invalidations": self.program_invalidations,
                "pending_mods": self._pending_mods,
                "specialized_frames": self.specialized_frames,
                "fallback_frames": self.fallback_frames,
                "ineligible_reason": self.compile_ineligible_reason,
            },
            "cache": self.flow_cache.stats() if self.flow_cache is not None else None,
        }

    # ---------------------------------------------------------- data plane

    def receive(self, port: Port, frame: EthernetFrame) -> None:
        self._walk_and_emit(frame, port.number)

    def receive_burst(
        self, port: Port, arrivals: "list[tuple[float, EthernetFrame]]"
    ) -> None:
        """A coalesced link burst lands here; route it to the batch path."""
        if len(arrivals) == 1:
            self._walk_and_emit(arrivals[0][1], port.number)
        else:
            self.process_batch(port.number, [frame for _, frame in arrivals])

    def inject(self, frame: EthernetFrame, in_port: int) -> None:
        """Run a frame through the pipeline as if it arrived on *in_port*."""
        self._walk_and_emit(frame, in_port)

    def process_batch(
        self, in_port: int, frames: "list[EthernetFrame]"
    ) -> None:
        """Run a burst through the pipeline, amortising per-frame overhead.

        Semantically this is exactly ``for f in frames: inject(f,
        in_port)`` executed at one simulated instant — bit-identical
        emitted frames, order, packet-ins and counters (proven by the
        randomized differential suite).  What the batch buys:

        * each distinct frame *object* is decoded once per burst
          (generators emit per-flow template frames, so a 32-frame
          burst from 4 flows costs 4 decodes, not 32);
        * the microflow cache validates entry expiry once per
          (key, burst) instead of once per frame
          (:meth:`DatapathFlowCache.get_for_burst`);
        * outputs whose cost-model charge is already covered are
          emitted as one egress burst per port
          (:meth:`Port.send_burst` → one link event per burst) instead
          of one simulator event per frame.

        Frames whose processing cost pushes completion past ``now``
        fall back to per-frame deferred emission, exactly like the
        single-frame path, so the cost model stays authoritative.
        Packet-ins are never batched: they reach ``to_controller`` at
        the same per-frame points as sequential processing, so even a
        synchronously wired controller that reprograms the pipeline
        mid-burst sees identical behaviour.
        """
        if not frames:
            return
        if len(frames) == 1:
            self._walk_and_emit(frames[0], in_port)
            return
        if self.specialize:
            program = self._active_program()
            if program is not None:
                program.run_burst(in_port, frames)
                return
            self.fallback_frames += len(frames)
        now = self.sim.now
        cache = self.flow_cache
        #: keys whose cached path was already expiry-validated this burst
        validated: "set[tuple[int | None, ...]]" = set()
        #: id(frame) -> decoded flow key (frames are not mutated by the
        #: pipeline — actions transform copies — so the memo is safe for
        #: the burst's lifetime)
        decoded: "dict[int, tuple[int | None, ...]]" = {}
        #: egress frames grouped per port as cleared frames land
        per_port: "dict[int, list[EthernetFrame]]" = {}
        forwarded = 0
        saved_tx, saved_async = self._tx_buffer, self._async_buffer
        decoded_get = decoded.get
        #: id(frame) -> wire length, filled lazily by the fast replay
        lengths: "dict[int, int]" = {}
        lengths_get = lengths.get
        get_for_burst = cache.get_for_burst if cache is not None else None
        replay_steps = self._replay_steps
        charge = self._charge
        tables = self.tables
        ports = self.ports
        zero_cost = self._cost_is_zero
        # With an all-zero cost model the stats object only feeds the
        # (skipped) cost computation, so one instance serves the burst.
        shared_stats = PipelineStats() if zero_cost else None
        outputs: "list[tuple[int, EthernetFrame]]" = []
        async_messages: "list[OpenFlowMessage]" = []
        try:
            for frame in frames:
                frame_id = id(frame)
                key = decoded_get(frame_id)
                if key is None:
                    view = PacketView(frame, in_port)
                    key = view.flow_key()
                    decoded[frame_id] = key
                else:
                    view = None  # built lazily: a cache hit never needs it
                stats = shared_stats if zero_cost else PipelineStats()
                self._tx_buffer = outputs
                self._async_buffer = async_messages
                hit = False
                if get_for_burst is not None:
                    path = get_for_burst(key, now, validated)
                    if path is not None:
                        cache.hits += 1
                        hit = True
                        fast = path.single_output
                        if fast is not None:
                            # Single-table, single-output walk: replay
                            # inline with the exact counters/touch the
                            # generic executor would produce.
                            table_id, entry, out_port = fast
                            table = tables[table_id]
                            table.lookups += 1
                            table.matches += 1
                            stats.lookups += 1
                            stats.actions += 1
                            length = lengths_get(frame_id)
                            if length is None:
                                length = lengths[frame_id] = frame.wire_length
                            entry.touch(now, length)
                            if out_port in ports:
                                outputs.append((out_port, frame))
                            else:
                                self.packets_dropped += 1
                        else:
                            replay_steps(path, frame, in_port, stats, now)
                    else:
                        cache.misses += 1
                if not hit:
                    if view is None:
                        view = PacketView(frame, in_port, key)
                    self._slow_path(view, frame, in_port, stats, now)
                    if cache is not None:
                        # The walk just stored a path whose entries the
                        # classifier saw live at `now` — no re-check needed.
                        validated.add(key)
                if outputs or async_messages:
                    finish = charge(stats)
                    if finish <= now:
                        if outputs:
                            forwarded += len(outputs)
                            for port_number, out_frame in outputs:
                                chain = per_port.get(port_number)
                                if chain is None:
                                    per_port[port_number] = [out_frame]
                                else:
                                    chain.append(out_frame)
                            outputs.clear()
                        if async_messages:
                            # Delivered at the same point the sequential
                            # path would deliver them, so a synchronously
                            # wired controller reacting to frame i still
                            # reprograms the pipeline before frame i+1 —
                            # and, because the egress accumulated so far
                            # is flushed first, sees the same forwarding
                            # and port statistics sequential processing
                            # would show it.
                            if forwarded:
                                self.packets_forwarded += forwarded
                                forwarded = 0
                                for port_number, port_frames in per_port.items():
                                    self.port(port_number).send_burst(port_frames)
                                per_port.clear()
                            for message in async_messages:
                                if self.to_controller is not None:
                                    self.to_controller(message.to_bytes())
                            async_messages.clear()
                    else:
                        # Deferred emission keeps per-frame timing; the
                        # buffers now belong to the scheduled closure.
                        self.sim.schedule_at(
                            finish,
                            lambda o=outputs, a=async_messages: self._emit(o, a),
                        )
                        outputs = []
                        async_messages = []
                else:
                    charge(stats)
        finally:
            self._tx_buffer, self._async_buffer = saved_tx, saved_async
        self.batch_bursts += 1
        self.batch_frames += len(frames)
        self.batch_unique_keys += (
            len(validated) if cache is not None else len(set(decoded.values()))
        )
        if forwarded:
            self.packets_forwarded += forwarded
            for port_number, port_frames in per_port.items():
                self.port(port_number).send_burst(port_frames)

    def _walk_and_emit(self, frame: EthernetFrame, in_port: int) -> None:
        """Run the pipeline, then emit buffered outputs after the CPU cost.

        Outputs are buffered during the walk so the cost-model delay
        (which depends on what the pipeline did) lands *before* the
        frame leaves — that is how the processing cost becomes visible
        as forwarding latency.
        """
        if self.specialize:
            program = self._active_program()
            if program is not None:
                program.run_one(frame, in_port)
                return
            self._interpret_one(frame, in_port)
            return
        stats = PipelineStats()
        outputs, async_messages = self._buffered(self._run_pipeline, frame, in_port, stats)
        self._flush(outputs, async_messages, stats)

    def _interpret_one(self, frame: EthernetFrame, in_port: int) -> None:
        """One frame through the interpreted path while specialization
        is enabled: either no program is active, or the active program
        selected a FALLBACK decision for this frame (packet-in, flood,
        action-set semantics...) and handed it over.  Does all of its
        own counting — the compiled caller only routes.
        """
        self.fallback_frames += 1
        stats = PipelineStats()
        outputs, async_messages = self._buffered(self._run_pipeline, frame, in_port, stats)
        self._flush(outputs, async_messages, stats)

    def _buffered(
        self, runner, *args
    ) -> "tuple[list[tuple[int, EthernetFrame]], list[OpenFlowMessage]]":
        """Run *runner* against fresh emission buffers; return what it buffered.

        The previous buffers are saved and restored, so a packet-out
        handled while a pipeline walk is in flight (reentrant controller
        callbacks) can never drop the walk's buffered outputs.
        """
        saved_tx, saved_async = self._tx_buffer, self._async_buffer
        self._tx_buffer, self._async_buffer = [], []
        try:
            runner(*args)
            return self._tx_buffer, self._async_buffer
        finally:
            self._tx_buffer, self._async_buffer = saved_tx, saved_async

    def _flush(
        self,
        outputs: "list[tuple[int, EthernetFrame]]",
        async_messages: "list[OpenFlowMessage]",
        stats: PipelineStats,
    ) -> None:
        finish = self._charge(stats)
        if not outputs and not async_messages:
            return
        if finish <= self.sim.now:
            self._emit(outputs, async_messages)
        else:
            self.sim.schedule_at(
                finish, lambda: self._emit(outputs, async_messages)
            )

    def _emit(
        self,
        outputs: "list[tuple[int, EthernetFrame]]",
        async_messages: "list[OpenFlowMessage]",
    ) -> None:
        """One frame's buffered emissions, frame-at-a-time on the wire."""
        for port_number, out_frame in outputs:
            self.packets_forwarded += 1
            self.port(port_number).send(out_frame)
        for message in async_messages:
            if self.to_controller is not None:
                self.to_controller(message.to_bytes())

    def _charge(self, stats: PipelineStats) -> float:
        """Account CPU time for a pipeline walk (serialises the core).

        Returns the simulated time at which processing completes.
        """
        if self._cost_is_zero:
            start = self.sim.now
            if self.busy_until > start:
                start = self.busy_until
            self.busy_until = start
            return start
        cost = self.cost_model.cost_s(
            lookups=stats.lookups,
            actions=stats.actions,
            vlan_ops=stats.vlan_ops,
            group_selections=stats.group_selections,
        )
        start = max(self.sim.now, self.busy_until)
        self.busy_until = start + cost
        return self.busy_until

    def _run_pipeline(
        self, frame: EthernetFrame, in_port: int, stats: PipelineStats
    ) -> None:
        now = self.sim.now
        view = PacketView(frame, in_port)
        key = view.flow_key()
        cache = self.flow_cache
        if cache is not None:
            cached = cache.get(key)
            if cached is not None and self._replay(cached, key, frame, in_port, stats, now):
                cache.hits += 1
                return
            cache.misses += 1
        self._slow_path(view, frame, in_port, stats, now)

    def _replay(
        self,
        cached: CachedPath,
        key: "tuple[int | None, ...]",
        frame: EthernetFrame,
        in_port: int,
        stats: PipelineStats,
        now: float,
    ) -> bool:
        """Re-execute a memoised walk; False if it went stale (expiry).

        Only the per-table classifier search is skipped: counters,
        action execution, group selection and packet-in all run exactly
        as on the slow path, so behaviour is bit-identical.
        """
        for _, entry in cached.steps:
            if entry.is_expired(now):
                self.flow_cache.discard(key)
                return False
        self._replay_steps(cached, frame, in_port, stats, now)
        return True

    def _replay_steps(
        self,
        cached: CachedPath,
        frame: EthernetFrame,
        in_port: int,
        stats: PipelineStats,
        now: float,
    ) -> None:
        """The expiry-validated half of a replay (shared with the batch
        path, which validates once per (key, burst) up front)."""
        current = frame
        action_set: dict[str, Action] = {}
        for table_id, entry in cached.steps:
            table = self.tables[table_id]
            table.lookups += 1
            table.matches += 1
            stats.lookups += 1
            current = self._execute_entry(entry, current, in_port, stats, action_set, now)[0]
        if cached.miss_table is not None:
            self.tables[cached.miss_table].lookups += 1
            stats.lookups += 1
            self.packets_dropped += 1
            return
        if action_set:
            ordered = self._order_action_set(action_set)
            self._apply_actions(ordered, current, in_port, stats)

    def _slow_path(
        self,
        view: PacketView,
        frame: EthernetFrame,
        in_port: int,
        stats: PipelineStats,
        now: float,
    ) -> None:
        key = view.flow_key()  # the *ingress* key — what the cache indexes
        table_id = 0
        action_set: dict[str, Action] = {}
        current = frame
        steps: "list[tuple[int, FlowEntry]]" = []
        #: (table id, flow key the lookup used there) — the dependency
        #: record a later FlowMod ADD is tested against.
        visits: "list[tuple[int, tuple[int | None, ...]]]" = []
        cache = self.flow_cache
        while table_id < len(self.tables):
            if view.frame is not current:
                view = PacketView(current, in_port)
            table = self.tables[table_id]
            if cache is not None:
                visits.append((table_id, view.flow_key()))
            entry = (
                table.lookup(view, now)
                if self.fast_path
                else table.linear_lookup(view, now)
            )
            stats.lookups += 1
            if entry is None:
                self.packets_dropped += 1
                if cache is not None:
                    cache.store(
                        key,
                        CachedPath(
                            steps=tuple(steps),
                            miss_table=table_id,
                            visits=tuple(visits),
                            group_ids=self._group_refs(steps),
                        ),
                    )
                return
            steps.append((table_id, entry))
            current, next_table = self._execute_entry(
                entry, current, in_port, stats, action_set, now
            )
            if next_table is None:
                break
            if next_table <= table_id:
                raise ValueError(
                    f"{self.name}: goto-table must increase ({table_id} -> {next_table})"
                )
            table_id = next_table
        if cache is not None:
            cache.store(
                key,
                CachedPath(
                    steps=tuple(steps),
                    visits=tuple(visits),
                    group_ids=self._group_refs(steps),
                ),
            )
        if action_set:
            ordered = self._order_action_set(action_set)
            self._apply_actions(ordered, current, in_port, stats)
        # No action set and no outputs along the way: packet is dropped
        # implicitly (already accounted where applicable).

    @staticmethod
    def _group_refs(steps: "list[tuple[int, FlowEntry]]") -> tuple[int, ...]:
        """Groups referenced by the matched entries' instructions.

        Direct references only: replay executes group actions against
        the live group table, so bucket contents (including nested
        group chains) are always read fresh — the dependency exists to
        drop memoised walks whose behaviour a GroupMod redirects.
        """
        refs = []
        for _, entry in steps:
            for instruction in entry.instructions:
                for action in getattr(instruction, "actions", ()):
                    if isinstance(action, GroupAction):
                        refs.append(action.group_id)
        return tuple(refs)

    def _execute_entry(
        self,
        entry: FlowEntry,
        current: EthernetFrame,
        in_port: int,
        stats: PipelineStats,
        action_set: "dict[str, Action]",
        now: float,
    ) -> "tuple[EthernetFrame, int | None]":
        """Run one matched entry's instructions; shared by both paths."""
        entry.touch(now, current.wire_length)
        next_table: "int | None" = None
        for instruction in entry.instructions:
            if isinstance(instruction, ApplyActions):
                current = self._apply_actions(
                    list(instruction.actions), current, in_port, stats
                )
            elif isinstance(instruction, WriteActions):
                for action in instruction.actions:
                    action_set[self._action_set_key(action)] = action
            elif isinstance(instruction, ClearActions):
                action_set.clear()
            elif isinstance(instruction, GotoTable):
                next_table = instruction.table_id
        return current, next_table

    @staticmethod
    def _action_set_key(action: Action) -> str:
        # One action of each kind in the set; output/group share a slot
        # (group takes precedence per spec).
        if isinstance(action, (OutputAction, GroupAction)):
            return "output"
        return type(action).__name__

    @staticmethod
    def _order_action_set(action_set: dict[str, Action]) -> list[Action]:
        """Spec order: pop, push, set-field, then output/group last."""
        precedence = {
            "PopVlanAction": 0,
            "PushVlanAction": 1,
            "SetFieldAction": 2,
            "output": 3,
        }
        return [
            action
            for _, action in sorted(
                action_set.items(), key=lambda item: precedence.get(item[0], 2)
            )
        ]

    def _apply_actions(
        self,
        actions: list[Action],
        frame: EthernetFrame,
        in_port: int,
        stats: PipelineStats,
    ) -> EthernetFrame:
        """Execute *actions* in order, returning the transformed frame."""
        current = frame
        for action in actions:
            stats.actions += 1
            if isinstance(action, OutputAction):
                self._output(current, action, in_port)
            elif isinstance(action, GroupAction):
                self._run_group(current, action.group_id, in_port, stats)
            elif isinstance(action, (PushVlanAction, PopVlanAction)):
                stats.vlan_ops += 1
                current = action.apply(current)
            else:
                current = action.apply(current)
        return current

    def _output(self, frame: EthernetFrame, action: OutputAction, in_port: int) -> None:
        port_no = action.port
        if port_no == c.OFPP_CONTROLLER:
            self._send_packet_in(
                frame, in_port, reason=c.OFPR_ACTION, max_len=action.max_len
            )
            return
        if port_no in (c.OFPP_FLOOD, c.OFPP_ALL):
            guard = self.flood_guard
            if guard is not None and not guard.allow(in_port, self.sim.now):
                self.floods_suppressed += 1
                return
            for number in sorted(self.ports):
                if number != in_port:
                    self._transmit(number, frame)
            return
        if port_no == c.OFPP_IN_PORT:
            self._transmit(in_port, frame)
            return
        if port_no in self.ports:
            self._transmit(port_no, frame)
        else:
            self.packets_dropped += 1

    def _transmit(self, port_number: int, frame: EthernetFrame) -> None:
        self._tx_buffer.append((port_number, frame))

    def _run_group(
        self, frame: EthernetFrame, group_id: int, in_port: int, stats: PipelineStats
    ) -> None:
        entry = self.groups.get(group_id)
        if entry is None:
            self.packets_dropped += 1
            return
        entry.packet_count += 1
        if entry.group_type == c.OFPGT_ALL:
            for index, bucket in enumerate(entry.buckets):
                entry.bucket_packet_counts[index] += 1
                self._apply_actions(list(bucket.actions), frame.copy(), in_port, stats)
            return
        view = PacketView(frame, in_port)
        stats.group_selections += 1
        if entry.group_type == c.OFPGT_SELECT:
            index = entry.select_bucket(view, hash_fields=self.select_hash_fields)
        else:  # indirect
            index = 0 if entry.buckets else None
        if index is None:
            self.packets_dropped += 1
            return
        entry.bucket_packet_counts[index] += 1
        self._apply_actions(list(entry.buckets[index].actions), frame, in_port, stats)

    # -------------------------------------------------------- controller IO

    def _next_xid(self) -> int:
        self._xid += 1
        return self._xid

    def _send_async(self, message: OpenFlowMessage) -> None:
        if self.to_controller is not None:
            self.to_controller(message.to_bytes())

    def _send_packet_in(
        self,
        frame: EthernetFrame,
        in_port: int,
        reason: int,
        max_len: int = c.OFPCML_NO_BUFFER,
    ) -> None:
        window = self.miss_suppression_s
        if window > 0.0:
            # Negative cache: one packet-in per miss signature per
            # window.  A miss *storm* (same offending flow hammering
            # the table-miss entry) costs the controller one message
            # per window instead of one per frame; distinct signatures
            # — i.e. steady-state reactive behaviour — pass untouched.
            signature = (in_port, frame.src, frame.dst, frame.vlan_id)
            now = self.sim.now
            last = self._miss_seen.get(signature)
            if last is not None and now - last < window:
                self.packet_ins_suppressed += 1
                return
            if len(self._miss_seen) >= MISS_CACHE_LIMIT:
                self._miss_seen.clear()
            self._miss_seen[signature] = now
        self.packets_to_controller += 1
        data = frame.to_bytes()
        if max_len != c.OFPCML_NO_BUFFER:
            data = data[:max_len]
        self._async_buffer.append(
            PacketIn(
                xid=self._next_xid(),
                reason=reason,
                match=Match(in_port=in_port),
                data=data,
            )
        )

    def handle_message(self, raw: bytes) -> list[bytes]:
        """Process one controller->switch message; returns reply bytes."""
        message = parse_message(raw)
        if isinstance(message, Hello):
            return [Hello(xid=message.xid).to_bytes()]
        if isinstance(message, EchoRequest):
            return [EchoReply(xid=message.xid, payload=message.payload).to_bytes()]
        if isinstance(message, FeaturesRequest):
            return [
                FeaturesReply(
                    xid=message.xid,
                    datapath_id=self.datapath_id,
                    n_buffers=0,
                    n_tables=len(self.tables),
                ).to_bytes()
            ]
        if isinstance(message, FlowMod):
            error = self._handle_flow_mod(message)
            return [error.to_bytes()] if error else []
        if isinstance(message, GroupMod):
            error = self._handle_group_mod(message)
            return [error.to_bytes()] if error else []
        if isinstance(message, PacketOut):
            self._handle_packet_out(message)
            return []
        if isinstance(message, FlowStatsRequest):
            return [self._flow_stats(message).to_bytes()]
        if isinstance(message, PortStatsRequest):
            return [self._port_stats(message).to_bytes()]
        from repro.openflow.messages import BarrierReply, BarrierRequest

        if isinstance(message, BarrierRequest):
            return [BarrierReply(xid=message.xid).to_bytes()]
        return [
            ErrorMsg(
                xid=message.xid, error_type=1, code=0, data=raw[:64]
            ).to_bytes()
        ]

    def _handle_flow_mod(self, message: FlowMod) -> "ErrorMsg | None":
        if message.table_id >= len(self.tables):
            return ErrorMsg(xid=message.xid, error_type=5, code=2)  # bad table
        table = self.tables[message.table_id]
        cache = self.flow_cache
        now = self.sim.now
        # Every state-changing FlowMod below invalidates the microflow
        # cache *dependency-scoped*: only memoised walks the change can
        # actually redirect are dropped, so churn against unrelated
        # tables or masks keeps the cache warm (as do no-ops: deletes
        # that remove nothing, rejected commands).
        if message.command == c.OFPFC_ADD:
            if message.idle_timeout or message.hard_timeout:
                self._ensure_sweeper()
            table.install(
                FlowEntry(
                    match=message.match,
                    priority=message.priority,
                    instructions=list(message.instructions),
                    cookie=message.cookie,
                    idle_timeout=float(message.idle_timeout),
                    hard_timeout=float(message.hard_timeout),
                    send_flow_removed=bool(message.flags & 1),
                ),
                now,
            )
            if cache is not None:
                cache.invalidate_for_add(
                    message.table_id, message.match, message.priority
                )
            self._mark_program_stale()
            return None
        if message.command in (c.OFPFC_DELETE, c.OFPFC_DELETE_STRICT):
            removed = table.delete(
                message.match,
                priority=message.priority,
                strict=message.command == c.OFPFC_DELETE_STRICT,
                cookie=message.cookie,
                cookie_mask=message.cookie_mask,
            )
            if removed:
                if cache is not None:
                    cache.invalidate_entries(removed)
                self._mark_program_stale()
            for entry in removed:
                if entry.send_flow_removed:
                    self._send_async(
                        FlowRemoved(
                            xid=self._next_xid(),
                            match=entry.match,
                            cookie=entry.cookie,
                            priority=entry.priority,
                            reason=c.OFPRR_DELETE,
                            table_id=table.table_id,
                            packet_count=entry.packet_count,
                            byte_count=entry.byte_count,
                        )
                    )
            return None
        if message.command in (c.OFPFC_MODIFY, c.OFPFC_MODIFY_STRICT):
            modified = []
            for entry in table:
                same_priority = (
                    entry.priority == message.priority
                    or message.command == c.OFPFC_MODIFY
                )
                if same_priority and entry.match == message.match:
                    entry.instructions = list(message.instructions)
                    if message.cookie:
                        entry.cookie = message.cookie
                    modified.append(entry)
            if modified:
                if cache is not None:
                    cache.invalidate_entries(modified)
                self._mark_program_stale()
            return None
        return ErrorMsg(xid=message.xid, error_type=4, code=0)  # bad command

    def _handle_group_mod(self, message: GroupMod) -> "ErrorMsg | None":
        try:
            if message.command == c.OFPGC_ADD:
                self.groups.add(message.group_id, message.group_type, message.buckets)
            elif message.command == c.OFPGC_MODIFY:
                self.groups.modify(
                    message.group_id, message.group_type, message.buckets
                )
            elif message.command == c.OFPGC_DELETE:
                self.groups.delete(message.group_id)
            else:
                return ErrorMsg(xid=message.xid, error_type=6, code=0)
        except (ValueError, KeyError):
            return ErrorMsg(xid=message.xid, error_type=6, code=1)
        # Bucket changes redirect memoised walks whose matched entries
        # reference this group; walks using other groups (or none) stay.
        if self.flow_cache is not None:
            self.flow_cache.invalidate_group(message.group_id)
        self._mark_program_stale()
        return None

    def _handle_packet_out(self, message: PacketOut) -> None:
        frame = EthernetFrame.from_bytes(message.data)
        in_port = (
            message.in_port
            if message.in_port not in (c.OFPP_CONTROLLER, c.OFPP_ANY)
            else 0
        )
        stats = PipelineStats()
        outputs, async_messages = self._buffered(
            self._apply_actions, list(message.actions), frame, in_port, stats
        )
        self._flush(outputs, async_messages, stats)

    def _flow_stats(self, message: FlowStatsRequest) -> FlowStatsReply:
        entries = []
        for table in self.tables:
            if message.table_id != 0xFF and table.table_id != message.table_id:
                continue
            for entry in table:
                if not entry.match.is_subset_of(message.match):
                    continue
                entries.append(
                    FlowStatsEntry(
                        table_id=table.table_id,
                        priority=entry.priority,
                        packet_count=entry.packet_count,
                        byte_count=entry.byte_count,
                        match=entry.match,
                    )
                )
        return FlowStatsReply(xid=message.xid, entries=entries)

    def _port_stats(self, message: PortStatsRequest) -> PortStatsReply:
        entries = []
        for number in sorted(self.ports):
            if message.port_no not in (c.OFPP_ANY, number):
                continue
            port = self.ports[number]
            entries.append(
                PortStatsEntry(
                    port_no=number,
                    rx_packets=port.rx_frames,
                    tx_packets=port.tx_frames,
                    rx_bytes=port.rx_bytes,
                    tx_bytes=port.tx_bytes,
                    tx_dropped=port.tx_dropped,
                )
            )
        return PortStatsReply(xid=message.xid, entries=entries)

    # ----------------------------------------------------------- timeouts

    def _ensure_sweeper(self) -> None:
        if self._sweep_scheduled:
            return
        self._sweep_scheduled = True
        self.sim.schedule(EXPIRY_SWEEP_INTERVAL_S, self._sweep)

    def _sweep(self) -> None:
        now = self.sim.now
        any_mortal_flows = False
        for table in self.tables:
            expired = table.expire(now)
            if expired:
                if self.flow_cache is not None:
                    self.flow_cache.invalidate_entries(expired)
                self._mark_program_stale()
            for entry in expired:
                if entry.send_flow_removed:
                    reason = (
                        c.OFPRR_HARD_TIMEOUT
                        if entry.hard_timeout
                        and now - entry.installed_at >= entry.hard_timeout
                        else c.OFPRR_IDLE_TIMEOUT
                    )
                    self._send_async(
                        FlowRemoved(
                            xid=self._next_xid(),
                            match=entry.match,
                            cookie=entry.cookie,
                            priority=entry.priority,
                            reason=reason,
                            table_id=table.table_id,
                            packet_count=entry.packet_count,
                            byte_count=entry.byte_count,
                        )
                    )
            if any(flow.idle_timeout or flow.hard_timeout for flow in table):
                any_mortal_flows = True
        if any_mortal_flows:
            self.sim.schedule(EXPIRY_SWEEP_INTERVAL_S, self._sweep)
        else:
            self._sweep_scheduled = False

    # ------------------------------------------------------------- helpers

    def dump_pipeline(self) -> str:
        """All tables + groups, readable (used by FIG1 bench)."""
        sections = [f"=== {self.name} (dpid={self.datapath_id:#x}) ==="]
        for table in self.tables:
            if len(table):
                sections.append(table.dump())
        if len(self.groups):
            sections.append(self.groups.dump())
        return "\n".join(sections)
