"""The datapath fast path: an exact-match microflow cache.

This is the top tier of the OVS-style two-tier datapath.  The first
packet of a flow walks the full multi-table pipeline (the slow path:
per-table classifier lookups) and records which entry won in each
table.  Every later packet with the same flow key replays that recorded
walk — one dict probe instead of one classifier search per table.

The cache memoises *decisions*, not outputs: actions are re-executed
for every packet, so counters, packet-in, group bucket selection and
frame rewrites behave bit-identically to the slow path.  Entries are
validated against flow expiry on every hit.

Invalidation is **dependency-indexed**: every :class:`CachedPath`
registers against the tables it visited (with the flow key it looked
up in each), the flow entries it matched, and the groups its entries
reference.  A control-plane mutation then touches only the dependent
walks:

* FlowMod ADD to table T invalidates walks that visited T *and* whose
  lookup key at T is matched by the new entry with sufficient priority
  (a new rule that can't win the arbitration leaves the walk valid);
* FlowMod DELETE/MODIFY and flow expiry invalidate walks that matched
  one of the removed/modified entries (removing a non-winner can never
  promote a different winner);
* GroupMod invalidates walks whose matched entries reference the
  group.

Walks untouched by a mutation keep serving hits, so sustained
control-plane churn against unrelated tables or masks no longer
flushes the fast path.  ``invalidate()`` (full flush) remains for
benchmarks that want the old whole-cache behaviour as a baseline.

The cache is also **burst-aware**: :meth:`DatapathFlowCache
.get_for_burst` validates entry expiry once per (key, burst) instead
of once per frame, and :attr:`CachedPath.single_output` precomputes
the dominant replay shape — a single-table walk ending in one
concrete-port output — so ``SoftSwitch.process_batch`` can replay it
inline without touching the instruction interpreter (safe because
MODIFY invalidates by matched entry, which drops the cached property
along with the path).

Above this cache sits the optional compiled tier 0
(:mod:`repro.softswitch.compiler`); below it, the staged classifier
(:mod:`repro.softswitch.flowtable`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterable, Optional

from repro.openflow import consts as c
from repro.openflow.actions import OutputAction
from repro.openflow.instructions import ApplyActions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.openflow.match import Match
    from repro.softswitch.flowtable import FlowEntry

#: Default microflow-cache capacity (distinct flow keys).
DEFAULT_CACHE_SIZE = 8192


@dataclass(frozen=True)
class CachedPath:
    """One memoised pipeline walk.

    ``steps`` are the (table_id, winning entry) pairs in walk order;
    ``miss_table`` is the table where the walk ended in a table-miss
    drop, or None if the walk completed.  ``visits`` records, for every
    table the walk consulted (matched tables plus the miss table), the
    flow key the lookup used there — the key can differ from the cache
    key once set-field/VLAN actions rewrite the frame mid-walk, and the
    per-table key is what a later FlowMod ADD is tested against.
    ``group_ids`` are the groups referenced by the matched entries'
    instructions.
    """

    steps: "tuple[tuple[int, FlowEntry], ...]"
    miss_table: Optional[int] = None
    visits: "tuple[tuple[int, tuple[int | None, ...]], ...]" = ()
    group_ids: tuple[int, ...] = ()

    @cached_property
    def single_output(self) -> "tuple[int, FlowEntry, int] | None":
        """``(table_id, entry, out_port)`` when the whole walk is one
        matched table whose instructions are exactly one ApplyActions
        holding one OutputAction to a concrete port — the dominant
        access-edge shape.  The batch path replays it without the
        generic instruction executor (same counters, same touch, same
        port-existence check), which is where batching's pps headroom
        at large burst sizes comes from.

        Safe to cache on the frozen path: a FlowMod MODIFY that rewrites
        the entry's instructions always invalidates every memoised walk
        that matched the entry, so no stale plan can survive.
        """
        if len(self.steps) != 1 or self.miss_table is not None:
            return None
        table_id, entry = self.steps[0]
        instructions = entry.instructions
        if len(instructions) != 1 or not isinstance(instructions[0], ApplyActions):
            return None
        actions = instructions[0].actions
        if len(actions) != 1 or type(actions[0]) is not OutputAction:
            return None
        port = actions[0].port
        if port in (c.OFPP_CONTROLLER, c.OFPP_FLOOD, c.OFPP_ALL, c.OFPP_IN_PORT):
            return None
        return table_id, entry, port


@dataclass
class CacheStats:
    """Invalidation accounting, split by scope (see ``stats()``)."""

    full: int = 0  # whole-cache flushes
    scoped: int = 0  # dependency-scoped invalidation events
    paths_dropped: int = 0  # memoised walks removed by either kind


class DatapathFlowCache:
    """Flow key -> memoised multi-table walk, with a dependency index.

    Eviction is FIFO once ``max_entries`` is reached — microflow caches
    favour simplicity over retention because re-populating an entry
    costs one slow-path walk.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        self.max_entries = max_entries
        self._paths: "dict[tuple[int | None, ...], CachedPath]" = {}
        #: table id -> cache keys whose walk visited that table
        self._by_table: "dict[int, set[tuple[int | None, ...]]]" = {}
        #: id(entry) -> cache keys whose walk matched that entry
        self._by_entry: "dict[int, set[tuple[int | None, ...]]]" = {}
        #: group id -> cache keys whose entries reference that group
        self._by_group: "dict[int, set[tuple[int | None, ...]]]" = {}
        self.hits = 0
        self.misses = 0
        self.invalidation_stats = CacheStats()

    def __len__(self) -> int:
        return len(self._paths)

    def get(self, key: "tuple[int | None, ...]") -> Optional[CachedPath]:
        return self._paths.get(key)

    def get_for_burst(
        self,
        key: "tuple[int | None, ...]",
        now: float,
        validated: "set[tuple[int | None, ...]]",
    ) -> Optional[CachedPath]:
        """Burst replay entry: expiry is validated once per (key, burst).

        *validated* is the per-burst set of keys already checked; a key
        found there skips the per-step expiry walk.  Sound because the
        whole burst executes at one simulated instant: an entry that was
        live at *now* cannot expire at *now* (``touch`` only pushes
        ``last_used_at`` forward), and a path freshly stored mid-burst
        only holds entries the classifier just saw live.  Stale paths
        are dropped here exactly as the single-frame path drops them.
        """
        path = self._paths.get(key)
        if path is None:
            return None
        if key not in validated:
            for _, entry in path.steps:
                if entry.is_expired(now):
                    self._drop(key)
                    return None
            validated.add(key)
        return path

    def store(self, key: "tuple[int | None, ...]", path: CachedPath) -> None:
        if key in self._paths:
            self._deregister(key, self._paths[key])
        elif len(self._paths) >= self.max_entries:
            self._drop(next(iter(self._paths)))
        self._paths[key] = path
        for table_id, _ in path.visits:
            self._by_table.setdefault(table_id, set()).add(key)
        for _, entry in path.steps:
            self._by_entry.setdefault(id(entry), set()).add(key)
        for group_id in path.group_ids:
            self._by_group.setdefault(group_id, set()).add(key)

    def discard(self, key: "tuple[int | None, ...]") -> None:
        if key in self._paths:
            self._drop(key)

    def _drop(self, key: "tuple[int | None, ...]") -> None:
        self._deregister(key, self._paths.pop(key))

    def _deregister(self, key: "tuple[int | None, ...]", path: CachedPath) -> None:
        for table_id, _ in path.visits:
            self._unindex(self._by_table, table_id, key)
        for _, entry in path.steps:
            self._unindex(self._by_entry, id(entry), key)
        for group_id in path.group_ids:
            self._unindex(self._by_group, group_id, key)

    @staticmethod
    def _unindex(index: dict, token, key) -> None:
        keys = index.get(token)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del index[token]

    # -------------------------------------------------------- invalidation

    def invalidate(self) -> None:
        """Drop every memoised walk (the whole-cache fallback)."""
        self.invalidation_stats.full += 1
        self.invalidation_stats.paths_dropped += len(self._paths)
        self._paths.clear()
        self._by_table.clear()
        self._by_entry.clear()
        self._by_group.clear()

    def invalidate_for_add(
        self, table_id: int, match: "Match", priority: int
    ) -> int:
        """Scoped invalidation for a freshly-added flow entry.

        A new rule in table T can only redirect walks that consulted T,
        and only those whose lookup key at T it matches with a priority
        that can win the arbitration (ties resolve to the incumbent, so
        ``priority >= matched.priority`` is one notch conservative —
        a replacement ADD carries the incumbent's own priority and must
        invalidate).  Walks that ended in a table-miss at T are
        redirected by any matching rule.
        """
        self.invalidation_stats.scoped += 1
        keys = self._by_table.get(table_id)
        if not keys:
            return 0
        doomed = []
        for key in keys:
            path = self._paths[key]
            for visited, lookup_key in path.visits:
                if visited != table_id:
                    continue
                if match.matches_key(lookup_key):
                    if path.miss_table == table_id:
                        doomed.append(key)
                    else:
                        matched = next(
                            entry for t, entry in path.steps if t == table_id
                        )
                        if priority >= matched.priority:
                            doomed.append(key)
                break  # goto-table only increases: one visit per table
        for key in doomed:
            self._drop(key)
        self.invalidation_stats.paths_dropped += len(doomed)
        return len(doomed)

    def invalidate_entries(self, entries: "Iterable[FlowEntry]") -> int:
        """Scoped invalidation for removed or modified flow entries.

        Only walks that *matched* one of the entries depend on them:
        removing or rewriting a non-winner can never promote a
        different winner past the one already memoised.
        """
        self.invalidation_stats.scoped += 1
        doomed: "set[tuple[int | None, ...]]" = set()
        for entry in entries:
            doomed |= self._by_entry.get(id(entry), set())
        for key in doomed:
            self._drop(key)
        self.invalidation_stats.paths_dropped += len(doomed)
        return len(doomed)

    def invalidate_group(self, group_id: int) -> int:
        """Scoped invalidation for a group-table mutation."""
        self.invalidation_stats.scoped += 1
        doomed = list(self._by_group.get(group_id, ()))
        for key in doomed:
            self._drop(key)
        self.invalidation_stats.paths_dropped += len(doomed)
        return len(doomed)

    # --------------------------------------------------------------- stats

    @property
    def invalidations(self) -> int:
        """Total invalidation events, full-flush and dependency-scoped."""
        return self.invalidation_stats.full + self.invalidation_stats.scoped

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "size": len(self._paths),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "full_invalidations": self.invalidation_stats.full,
            "scoped_invalidations": self.invalidation_stats.scoped,
            "paths_dropped": self.invalidation_stats.paths_dropped,
        }
