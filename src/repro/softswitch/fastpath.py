"""The datapath fast path: an exact-match microflow cache.

This is the top tier of the OVS-style two-tier datapath.  The first
packet of a flow walks the full multi-table pipeline (the slow path:
per-table classifier lookups) and records which entry won in each
table.  Every later packet with the same flow key replays that recorded
walk — one dict probe instead of one classifier search per table.

The cache memoises *decisions*, not outputs: actions are re-executed
for every packet, so counters, packet-in, group bucket selection and
frame rewrites behave bit-identically to the slow path.  Entries are
validated against flow expiry on every hit, and the whole cache is
invalidated on any flow-table or group-table mutation — correctness
first, the common steady state (no control-plane churn) keeps its
hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.softswitch.flowtable import FlowEntry

#: Default microflow-cache capacity (distinct flow keys).
DEFAULT_CACHE_SIZE = 8192


@dataclass(frozen=True)
class CachedPath:
    """One memoised pipeline walk.

    ``steps`` are the (table_id, winning entry) pairs in walk order;
    ``miss_table`` is the table where the walk ended in a table-miss
    drop, or None if the walk completed.
    """

    steps: "tuple[tuple[int, FlowEntry], ...]"
    miss_table: Optional[int] = None


class DatapathFlowCache:
    """Flow key -> memoised multi-table walk, with stats.

    Eviction is FIFO once ``max_entries`` is reached — microflow caches
    favour simplicity over retention because re-populating an entry
    costs one slow-path walk.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        self.max_entries = max_entries
        self._paths: "dict[tuple[int | None, ...], CachedPath]" = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._paths)

    def get(self, key: "tuple[int | None, ...]") -> Optional[CachedPath]:
        return self._paths.get(key)

    def store(self, key: "tuple[int | None, ...]", path: CachedPath) -> None:
        if len(self._paths) >= self.max_entries and key not in self._paths:
            self._paths.pop(next(iter(self._paths)))
        self._paths[key] = path

    def discard(self, key: "tuple[int | None, ...]") -> None:
        self._paths.pop(key, None)

    def invalidate(self) -> None:
        """Drop every memoised walk (any table/group mutation)."""
        self.invalidations += 1
        if self._paths:
            self._paths.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "size": len(self._paths),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
        }
