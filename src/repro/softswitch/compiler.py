"""ESwitch-style datapath specialization: compile the pipeline to code.

The ESwitch result this reproduction is calibrated against [Molnar et
al., SIGCOMM 2016] comes from *specializing* the datapath to the
currently installed flow tables instead of interpreting a
general-purpose pipeline.  This module is that idea applied to the
Python datapath: it inspects a switch's installed tables and generates
— via textual codegen + ``exec`` — one specialized function pair
(single frame + burst) per switch, which the datapath runs as **tier 0**
above the microflow cache:

* **miniflow shrinking** — the flow-key extractor is inlined and
  restricted to the union of slots any installed match reads
  (:func:`repro.openflow.packetview.partial_decode_source`), so a
  three-field pipeline never pays a 14-field decode;
* **unrolled classification** — one probe per exact field-set and per
  staged subtable, emitted as straight-line code with the bucket dicts,
  masks and max-priority bounds baked in as compile-time constants
  (probes are ordered by descending max priority and guarded so a probe
  that cannot beat the best candidate is skipped);
* **straight-line execution plans** — each entry's instructions are
  compiled to a plan: the dominant single-output shape dispatches with
  no instruction-type checks at all, and VLAN push/pop / set-field
  sequences run as a flat step list with the per-packet cost-model
  charge precomputed as a constant.

A compiled program additionally memoises shrunk key -> plan in a
bounded per-program cache and, on the burst path, memoises per frame
*object* within a burst (generators emit per-flow template frames, so
a 32-frame burst from 4 flows classifies 4 times).

**Safety contract.**  A program is only compiled for pipelines whose
interpreted execution it can reproduce bit-identically: a single-table
walk (tables 1+ empty), no timeouts installed anywhere, only
apply-actions of concrete-port outputs / VLAN push-pop / set-field, and
a plain :class:`DatapathCostModel` (whose per-plan charge is then a
compile-time constant equal to what ``cost_s`` returns per packet).
Anything else — goto chains, groups, packet-ins, mortal flows,
subclassed cost models — makes :func:`compile_datapath` return None and
the switch keeps running the interpreted two-tier fast path.  The
datapath discards the program before the next packet whenever the
tables, groups or cost model change, so the live index structures the
program references are never probed stale.

**Churn hysteresis.**  Recompilation is *not* per-mutation: a
FlowMod/GroupMod/expiry/cost-model swap marks the program stale
synchronously (the next frame falls back to the interpreted path),
and the datapath recompiles only after ``recompile_after_mods`` (64)
accumulated mods or a ``recompile_quiescent_s`` (50 ms) quiet
interval — both knobs on ``SoftSwitch``.  Under sustained churn the
switch therefore runs interpreted at ~1.0x rather than thrashing the
compiler; ``SoftSwitch.stats()["specialization"]`` reports compiles,
invalidations and the specialized/fallback frame split.

On the burst path the compiled program processes
``process_batch``-shaped bursts directly: one shrunk-key extraction
and one plan selection per distinct frame *object* per burst (the
per-frame-object memo), with outputs re-coalesced per egress port —
so a fabric of migrated hops keeps one link event per burst per hop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.openflow import consts as c
from repro.openflow.actions import (
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
)
from repro.openflow.instructions import ApplyActions
from repro.openflow.packetview import EXTRACTOR_GLOBALS, partial_decode_source
from repro.softswitch.costmodel import DatapathCostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.softswitch.datapath import SoftSwitch
    from repro.softswitch.flowtable import FlowEntry

#: Bound on a program's persistent shrunk-key -> plan cache.  Cleared
#: wholesale when full: the cache is derived state, one slow classify
#: per key rebuilds it.
KEY_CACHE_LIMIT = 8192

#: Bound on the persistent frame-object memo (see `_EXECUTOR_SOURCE`).
FRAME_MEMO_LIMIT = 4096

#: Plan kinds (first element of every plan tuple).
PLAN_OUT = 0  # single concrete-port output
PLAN_MISS = 1  # table miss: count the lookup, drop
PLAN_NOOP = 2  # matched entry with no emitting instructions
PLAN_SEQ = 3  # straight-line action sequence (vlan ops, set-field, outputs)

_RESERVED_PORTS = frozenset(
    (c.OFPP_CONTROLLER, c.OFPP_FLOOD, c.OFPP_ALL, c.OFPP_IN_PORT)
)


class CompiledProgram:
    """One switch's specialized datapath (tier 0 of the fast path)."""

    __slots__ = ("run_one", "run_burst", "source", "used_slots", "key_cache", "plans")

    def __init__(self, run_one, run_burst, source, used_slots, key_cache, plans):
        self.run_one = run_one
        self.run_burst = run_burst
        #: The generated module source (debugging / tests).
        self.source = source
        #: Flow-key slots the shrunk extractor decodes.
        self.used_slots = used_slots
        #: shrunk key -> plan; shared by both entry points.
        self.key_cache = key_cache
        #: id(entry) -> plan, populated lazily per selected entry.
        self.plans = plans


_TRANSFORM_ACTIONS = (PushVlanAction, PopVlanAction, SetFieldAction)


def _entry_compilable(entry: "FlowEntry") -> bool:
    """Cheap eligibility test: can :func:`_plan_for` compile *entry*?

    Split from plan construction so the O(n) compile-time scan over a
    large table allocates nothing; plans themselves are built lazily,
    one per entry the classifier actually selects.
    """
    if entry.idle_timeout or entry.hard_timeout:
        return False  # expiry re-arbitrates lookups asynchronously
    instructions = entry.instructions
    if not instructions:
        return True
    if len(instructions) != 1 or type(instructions[0]) is not ApplyActions:
        return False
    for action in instructions[0].actions:
        kind = type(action)
        if kind is OutputAction:
            if action.port in _RESERVED_PORTS:
                return False  # packet-in / flood need the interpreter
        elif kind not in _TRANSFORM_ACTIONS:
            return False
    return True


def _plan_for(entry: "FlowEntry", model: DatapathCostModel):
    """Compile one entry's instructions to a plan tuple, or None.

    The plan's cost constant is produced by the same ``cost_s`` call
    the interpreted path makes per packet (1 lookup, the entry's action
    and VLAN-op counts), so charging is float-identical.
    """
    instructions = entry.instructions
    if not instructions:
        return (PLAN_NOOP, entry, None, model.cost_s(lookups=1, actions=0))
    if len(instructions) != 1 or type(instructions[0]) is not ApplyActions:
        return None
    actions = instructions[0].actions
    steps = []
    vlan_ops = 0
    for action in actions:
        kind = type(action)
        if kind is OutputAction:
            if action.port in _RESERVED_PORTS:
                return None  # packet-in / flood need the interpreter
            steps.append((True, action.port))
        elif kind in (PushVlanAction, PopVlanAction):
            vlan_ops += 1
            steps.append((False, action))
        elif kind is SetFieldAction:
            steps.append((False, action))
        else:
            return None
    cost = model.cost_s(lookups=1, actions=len(actions), vlan_ops=vlan_ops)
    if len(steps) == 1 and steps[0][0]:
        return (PLAN_OUT, entry, steps[0][1], cost)
    return (PLAN_SEQ, entry, tuple(steps), cost)


def _tuple_literal(parts: "list[str]") -> str:
    if not parts:
        return "()"
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


def _probe_block(
    lines: list[str],
    guard_priority: int,
    probe_name: str,
    value_expr: str,
    none_guards: "list[str]",
) -> None:
    lines.append(f"    if e is None or ek0 >= {-guard_priority}:")
    indent = "        "
    if none_guards:
        lines.append(indent + "if " + " and ".join(none_guards) + ":")
        indent += "    "
    lines.append(f"{indent}ch = {probe_name}({value_expr})")
    lines.append(f"{indent}if ch:")
    lines.append(f"{indent}    n = ch[0]")
    lines.append(f"{indent}    nk = n.sort_key")
    lines.append(f"{indent}    if e is None or nk < ek:")
    lines.append(f"{indent}        e = n")
    lines.append(f"{indent}        ek = nk")
    lines.append(f"{indent}        ek0 = nk[0]")


def compile_datapath(switch: "SoftSwitch") -> Optional[CompiledProgram]:
    """Specialize *switch*'s installed pipeline, or None if ineligible."""
    model = switch.cost_model
    if type(model) is not DatapathCostModel:
        return None  # subclassed cost hooks must stay on the per-packet path
    tables = switch.tables
    if not tables:
        return None
    for table in tables[1:]:
        if len(table):
            return None  # multi-table walks stay interpreted
    table0 = tables[0]
    for entry in table0:
        if not _entry_compilable(entry):
            return None
    #: id(entry) -> plan, built lazily as the classifier selects
    #: entries; eligibility above guarantees every build succeeds.
    plans: dict[int, tuple] = {}
    used_slots = tuple(sorted(table0.used_slots()))
    miss_plan = (PLAN_MISS, None, None, model.cost_s(lookups=1, actions=0))
    key_cache: dict = {}

    frame_memo: dict = {}
    namespace: dict = dict(EXTRACTOR_GLOBALS)
    namespace.update(
        SIM=switch.sim,
        S=switch,
        T0=table0,
        PORTS=switch.ports,
        PORT=switch.port,
        EMIT=switch._emit,
        SCHED=switch.sim.schedule_at,
        KC=key_cache,
        KC_get=key_cache.get,
        KC_LIMIT=KEY_CACHE_LIMIT,
        PLANS=plans,
        PLANS_get=plans.get,
        BUILD=lambda entry, _model=model: _plan_for(entry, _model),
        MISS=miss_plan,
        PMEMO=frame_memo,
        PMEMO_get=frame_memo.get,
        PMEMO_LIMIT=FRAME_MEMO_LIMIT,
    )

    # ---------------------------------------------------------- classify
    lines = ["def _classify(frame, in_port):"]
    lines.extend(partial_decode_source(used_slots, indent="    "))
    key_expr = _tuple_literal([f"v{slot}" for slot in used_slots])
    lines.append(f"    key = {key_expr}")
    lines.append("    plan = KC_get(key)")
    lines.append("    if plan is not None:")
    lines.append("        return plan, key")
    lines.append("    e = None")
    lines.append("    ek = None")
    lines.append("    ek0 = 1")

    probes: list[tuple] = []
    for probe_slots, buckets, max_priority in table0.exact_probe_groups():
        probes.append((max_priority, "exact", probe_slots, buckets))
    for subtable in table0.subtables_in_order():
        probes.append((subtable.max_priority, "masked", subtable.mask_set, subtable.buckets))
    probes.sort(key=lambda item: -item[0])
    for index, (max_priority, tier, shape, buckets) in enumerate(probes):
        probe_name = f"P{index}_get"
        namespace[probe_name] = buckets.get
        if tier == "exact":
            value_expr = _tuple_literal([f"v{slot}" for slot in shape])
            none_guards: list[str] = []
        else:
            value_expr = _tuple_literal(
                [f"v{slot} & {mask:#x}" for slot, mask in shape]
            )
            none_guards = [f"v{slot} is not None" for slot, _ in shape]
        _probe_block(lines, max_priority, probe_name, value_expr, none_guards)

    lines.append("    if e is None:")
    lines.append("        plan = MISS")
    lines.append("    else:")
    lines.append("        eid = id(e)")
    lines.append("        plan = PLANS_get(eid)")
    lines.append("        if plan is None:")
    lines.append("            plan = BUILD(e)")
    lines.append("            PLANS[eid] = plan")
    lines.append("    if len(KC) >= KC_LIMIT:")
    lines.append("        KC.clear()")
    lines.append("    KC[key] = plan")
    lines.append("    return plan, key")
    lines.append("")

    # Frame-memo mutation guards: a memoised decision is only replayed
    # while every frame attribute the shrunk key (or the wire length)
    # depends on is unchanged.  Payload identity and tag count are
    # always guarded (they feed L3/L4 fields and wire_length); the
    # other guards shrink with the used-slot set, like the extractor.
    guards = ["m[3] is frame.payload", "m[4] == len(frame.tags)"]
    extras: list[tuple[str, str]] = []  # (store expr, guard template)
    slot_set = set(used_slots)
    if 0 in slot_set:
        extras.append(("in_port", "m[{i}] == in_port"))
    if 1 in slot_set:
        extras.append(("frame.dst", "m[{i}] is frame.dst"))
    if 2 in slot_set:
        extras.append(("frame.src", "m[{i}] is frame.src"))
    if 3 in slot_set or slot_set & set(range(6, 14)):
        extras.append(("frame.ethertype", "m[{i}] == frame.ethertype"))
    if slot_set & {4, 5}:
        extras.append(("frame.vlan", "m[{i}] is frame.vlan"))
    for index, (_, template) in enumerate(extras):
        guards.append(template.format(i=5 + index))
    store_parts = ["dec", "key", "frame", "frame.payload", "len(frame.tags)"]
    store_parts.extend(expr for expr, _ in extras)
    executor = _EXECUTOR_SOURCE.replace("__GUARDS__", " and ".join(guards))
    executor = executor.replace("__MEMO_ENTRY__", "(" + ", ".join(store_parts) + ")")
    lines.append(executor)

    source = "\n".join(lines)
    exec(compile(source, f"<specialized datapath {switch.name}>", "exec"), namespace)
    return CompiledProgram(
        run_one=namespace["run_one"],
        run_burst=namespace["run_burst"],
        source=source,
        used_slots=used_slots,
        key_cache=key_cache,
        plans=plans,
    )


#: The execution half of every generated module.  Static — only the
#: classifier and extractor vary per switch — but it lives inside the
#: generated module so the hot loop binds its constants (switch, table,
#: ports, scheduler) as default arguments, the fastest lookups Python
#: offers.  Charging mirrors ``SoftSwitch._charge`` exactly: start at
#: max(now, busy_until), advance by the plan's precomputed cost, emit
#: immediately when the finish time has not moved past ``now`` and
#: defer through the simulator otherwise.
_EXECUTOR_SOURCE = '''
def _lookup(frame, in_port, fid, PMEMO=PMEMO, PMEMO_get=PMEMO_get,
            PMEMO_LIMIT=PMEMO_LIMIT, classify=_classify):
    """dec for one frame object: guarded persistent memo over classify.

    The memo holds a strong reference to the frame, so the id key can
    never be reused while the entry lives; the guards re-validate every
    frame attribute the decision depends on, so even a caller mutating
    a frame between bursts gets a fresh classification.
    """
    m = PMEMO_get(fid)
    if m is not None and __GUARDS__:
        return m[0], m[1]
    plan, key = classify(frame, in_port)
    dec = plan + (frame.wire_length,)
    if len(PMEMO) >= PMEMO_LIMIT:
        PMEMO.clear()
    PMEMO[fid] = __MEMO_ENTRY__
    return dec, key


def run_one(frame, in_port, SIM=SIM, S=S, T0=T0, PORTS=PORTS,
            EMIT=EMIT, SCHED=SCHED, lookup=_lookup):
    now = SIM.now
    dec, _key = lookup(frame, in_port, id(frame))
    kind = dec[0]
    T0.lookups += 1
    outs = None
    if kind == 0:
        _, entry, port, cost, length = dec
        T0.matches += 1
        entry.packet_count += 1
        entry.byte_count += length
        entry.last_used_at = now
        if port in PORTS:
            outs = [(port, frame)]
        else:
            S.packets_dropped += 1
    elif kind == 1:
        cost = dec[3]
        S.packets_dropped += 1
    elif kind == 2:
        _, entry, _payload, cost, length = dec
        T0.matches += 1
        entry.packet_count += 1
        entry.byte_count += length
        entry.last_used_at = now
    else:
        _, entry, steps, cost, length = dec
        T0.matches += 1
        entry.packet_count += 1
        entry.byte_count += length
        entry.last_used_at = now
        current = frame
        outs = []
        for is_out, payload in steps:
            if is_out:
                if payload in PORTS:
                    outs.append((payload, current))
                else:
                    S.packets_dropped += 1
            else:
                current = payload.apply(current)
        if not outs:
            outs = None
    busy = S.busy_until
    start = busy if busy > now else now
    finish = start + cost
    S.busy_until = finish
    S.specialized_frames += 1
    if outs is not None:
        if finish <= now:
            EMIT(outs, ())
        else:
            SCHED(finish, lambda o=outs: EMIT(o, ()))


def run_burst(in_port, frames, SIM=SIM, S=S, T0=T0, PORTS=PORTS,
              PORT=PORT, EMIT=EMIT, SCHED=SCHED, lookup=_lookup):
    now = SIM.now
    memo = {}
    memo_get = memo.get
    uniq = set()
    uniq_add = uniq.add
    per_port = {}
    per_port_get = per_port.get
    forwarded = 0
    dropped = 0
    lookups = 0
    matches = 0
    busy = S.busy_until
    for frame in frames:
        fid = id(frame)
        dec = memo_get(fid)
        if dec is None:
            dec, key = lookup(frame, in_port, fid)
            uniq_add(key)
            memo[fid] = dec
        lookups += 1
        kind = dec[0]
        if kind == 0:
            _, entry, port, cost, length = dec
            matches += 1
            entry.packet_count += 1
            entry.byte_count += length
            entry.last_used_at = now
            start = busy if busy > now else now
            busy = start + cost
            if port in PORTS:
                if busy <= now:
                    chain = per_port_get(port)
                    if chain is None:
                        per_port[port] = [frame]
                    else:
                        chain.append(frame)
                    forwarded += 1
                else:
                    SCHED(busy, lambda o=[(port, frame)]: EMIT(o, ()))
            else:
                dropped += 1
        elif kind == 1:
            dropped += 1
            start = busy if busy > now else now
            busy = start + dec[3]
        elif kind == 2:
            _, entry, _payload, cost, length = dec
            matches += 1
            entry.packet_count += 1
            entry.byte_count += length
            entry.last_used_at = now
            start = busy if busy > now else now
            busy = start + cost
        else:
            _, entry, steps, cost, length = dec
            matches += 1
            entry.packet_count += 1
            entry.byte_count += length
            entry.last_used_at = now
            current = frame
            outs = []
            for is_out, payload in steps:
                if is_out:
                    if payload in PORTS:
                        outs.append((payload, current))
                    else:
                        dropped += 1
                else:
                    current = payload.apply(current)
            start = busy if busy > now else now
            busy = start + cost
            if outs:
                if busy <= now:
                    for out_port, out_frame in outs:
                        chain = per_port_get(out_port)
                        if chain is None:
                            per_port[out_port] = [out_frame]
                        else:
                            chain.append(out_frame)
                    forwarded += len(outs)
                else:
                    SCHED(busy, lambda o=outs: EMIT(o, ()))
    S.busy_until = busy
    T0.lookups += lookups
    T0.matches += matches
    if dropped:
        S.packets_dropped += dropped
    count = len(frames)
    S.specialized_frames += count
    S.batch_bursts += 1
    S.batch_frames += count
    # Grouping statistic over *shrunk* keys — the keys this tier
    # actually distinguishes (the interpreted path counts full keys).
    S.batch_unique_keys += len(uniq)
    if forwarded:
        S.packets_forwarded += forwarded
        for port_number, port_frames in per_port.items():
            PORT(port_number).send_burst(port_frames)
'''
