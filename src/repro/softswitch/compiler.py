"""ESwitch-style datapath specialization: compile the pipeline to code.

The ESwitch result this reproduction is calibrated against [Molnar et
al., SIGCOMM 2016] comes from *specializing* the datapath to the
currently installed flow tables instead of interpreting a
general-purpose pipeline.  This module is that idea applied to the
Python datapath: it inspects a switch's installed tables and generates
— via textual codegen + ``exec`` — one specialized function pair
(single frame + burst) per switch, which the datapath runs as **tier 0**
above the microflow cache:

* **miniflow shrinking** — the flow-key extractor is inlined and
  restricted to the union of slots any installed match reads across
  *all* tables of the pipeline (plus the select-group hash fields when
  select groups are installed), so a three-field pipeline never pays a
  14-field decode;
* **unrolled classification** — one probe per exact field-set and per
  staged subtable of table 0, emitted as straight-line code with the
  bucket dicts, masks and max-priority bounds baked in as compile-time
  constants.  Probe order is **profile-guided**: both tiers bump a
  shared per-probe hit counter, and each recompile orders the probe
  blocks by observed hit frequency (ESwitch's trick), falling back to
  descending max priority for unproven probes.  Order is a pure perf
  choice — every probe is guarded by the max-priority bound and the
  winner is the global sort-key minimum, so any order classifies
  identically;
* **baked decisions** — the table-0 winner is expanded into a
  *decision*: multi-table ``GotoTable`` chains are walked once per
  distinct flow key (later-table lookups run against the rehydrated
  shrunk key, valid because the key covers every matched slot),
  select-group buckets are hashed once per key with the interpreter's
  exact weighted-hash, all/indirect buckets are flattened into the
  step list, and the per-packet cost-model charge is precomputed as a
  constant.  The dominant single-table single-output shape keeps its
  zero-dispatch fast plan.

**Timeouts.**  Pipelines with idle/hard timeouts compile to a *mortal*
program: every decision carries the mortal entries it walked through,
and both caches (key cache and frame memo) revalidate those entries'
expiry before replaying — the same lazy validation
``CachedPath`` replay performs one tier down.  Expiry is monotonic
(an expired entry can never revive, and installs mark the program
stale), so a decision is valid exactly until one of its own entries
expires.

**Per-entry fallback.**  Rules the generated code cannot reproduce
bit-identically — packet-ins (controller output), flood/ALL/IN_PORT
outputs, write-actions/clear-actions, frame transforms before a goto,
nested groups inside buckets, select-group hashing after a transform,
non-increasing gotos — no longer reject the whole pipeline.  They
compile to a FALLBACK decision that routes just those frames through
the interpreted path (``SoftSwitch._interpret_one``), which performs
all of its own counting; mixed pipelines (the learning-switch
table-miss rule under proactive policy rules) therefore still run the
hot rules compiled.  Whole-program compilation now fails only for a
subclassed cost model (per-packet cost hooks must stay on the
interpreted path); the first rule that forces a fallback is recorded
as ``switch.compile_ineligible_reason`` and surfaced by
``SoftSwitch.stats()``.

**Churn hysteresis.**  Recompilation is *not* per-mutation: a
FlowMod/GroupMod/expiry/cost-model swap marks the program stale
synchronously (the next frame falls back to the interpreted path),
and the datapath recompiles only after ``recompile_after_mods`` (64)
accumulated mods or a ``recompile_quiescent_s`` (50 ms) quiet
interval — both knobs on ``SoftSwitch``.  Under sustained churn the
switch therefore runs interpreted at ~1.0x rather than thrashing the
compiler; ``SoftSwitch.stats()["specialization"]`` reports compiles,
invalidations and the specialized/fallback frame split.

On the burst path the compiled program processes
``process_batch``-shaped bursts directly: one shrunk-key extraction
and one decision per distinct frame *object* per burst, with outputs
re-coalesced per egress port.  A FALLBACK frame mid-burst first
flushes the coalesced egress and syncs the busy clock (mirroring the
interpreted batch path's flush-before-async ordering, so a synchronous
controller observes every prior frame), and if the interpreted walk
mutates the pipeline — a reactive controller answering the packet-in —
the rest of the burst drains through the interpreter too, because the
program the burst was running is stale.
"""

from __future__ import annotations

from random import Random
from typing import TYPE_CHECKING, Optional

from repro.openflow import consts as c
from repro.openflow.actions import (
    GroupAction,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
)
from repro.openflow.instructions import ApplyActions, GotoTable
from repro.openflow.packetview import (
    EXTRACTOR_GLOBALS,
    FIELD_INDEX,
    expand_key,
    partial_decode_source,
)
from repro.softswitch.costmodel import DatapathCostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.softswitch.datapath import SoftSwitch
    from repro.softswitch.flowtable import FlowEntry

#: Bound on a program's persistent shrunk-key -> decision cache.
#: Cleared wholesale when full: the cache is derived state, one slow
#: classify per key rebuilds it.
KEY_CACHE_LIMIT = 8192

#: Bound on the persistent frame-object memo (see `_EXECUTOR_SOURCE`).
FRAME_MEMO_LIMIT = 4096

#: Plan kinds (first element of every plan tuple).
PLAN_OUT = 0  # single concrete-port output
PLAN_MISS = 1  # table miss: count the lookup, drop
PLAN_NOOP = 2  # matched entry with no emitting instructions
PLAN_SEQ = 3  # straight-line action sequence (vlan ops, set-field, outputs)
PLAN_CHAIN = 4  # multi-table walk and/or group execution, baked per key
PLAN_FALLBACK = 5  # route the frame through the interpreted path

#: Step opcodes inside CHAIN plans (first element of each step).
STEP_OUT = 0  # output to a concrete port (drop if the port is gone)
STEP_XFORM = 1  # frame transform: push/pop VLAN, set-field
STEP_GROUP_ALL = 2  # all-group: every bucket's steps, per-bucket counters
STEP_GROUP_ONE = 3  # select/indirect group: one pre-resolved bucket
STEP_GROUP_DEAD = 4  # reference to a group that does not exist: drop

_RESERVED_PORTS = frozenset(
    (c.OFPP_CONTROLLER, c.OFPP_FLOOD, c.OFPP_ALL, c.OFPP_IN_PORT)
)
_RESERVED_PORT_REASON = {
    c.OFPP_CONTROLLER: "controller output (packet-in)",
    c.OFPP_FLOOD: "flood output",
    c.OFPP_ALL: "all-ports output",
    c.OFPP_IN_PORT: "in-port output",
}

_TRANSFORM_ACTIONS = (PushVlanAction, PopVlanAction, SetFieldAction)


class CompiledProgram:
    """One switch's specialized datapath (tier 0 of the fast path)."""

    __slots__ = (
        "run_one", "run_burst", "classify", "source", "used_slots",
        "key_cache", "plans", "mortal", "fallback_reason", "probe_order",
    )

    def __init__(self, run_one, run_burst, classify, source, used_slots,
                 key_cache, plans, mortal, fallback_reason, probe_order):
        self.run_one = run_one
        self.run_burst = run_burst
        #: The generated classifier (frame, in_port, now) -> (plan, key);
        #: exposed for probe-order invariance tests.
        self.classify = classify
        #: The generated module source (debugging / tests).
        self.source = source
        #: Flow-key slots the shrunk extractor decodes.
        self.used_slots = used_slots
        #: shrunk key -> decision; shared by both entry points.
        self.key_cache = key_cache
        #: id(entry) -> key-independent plan, populated lazily.
        self.plans = plans
        #: True when any installed entry carries a timeout — decisions
        #: then revalidate their entries' expiry before every replay.
        self.mortal = mortal
        #: Why the first falling-back rule cannot be compiled (None when
        #: the whole pipeline compiles clean).
        self.fallback_reason = fallback_reason
        #: The probe ordering this program was compiled with.
        self.probe_order = probe_order


# ---------------------------------------------------------------------------
# Entry analysis and decision building (plain Python, not codegen: runs
# once per distinct flow key on a key-cache miss, never per frame)
# ---------------------------------------------------------------------------


def _shape_of(entry: "FlowEntry"):
    """-> (flat apply-actions, goto target, fallback reason or None).

    Flattens the instruction list the way ``_execute_entry`` runs it:
    apply-actions execute in encounter order, the last goto wins and
    only takes effect after the whole list.  Any instruction or action
    the compiled executor cannot reproduce yields a reason instead.
    """
    actions: list = []
    next_table: "int | None" = None
    for instruction in entry.instructions:
        kind = type(instruction)
        if kind is ApplyActions:
            actions.extend(instruction.actions)
        elif kind is GotoTable:
            next_table = instruction.table_id
        else:
            return None, None, f"{type(instruction).__name__} needs the action set"
    for action in actions:
        kind = type(action)
        if kind is OutputAction:
            if action.port in _RESERVED_PORTS:
                return None, None, _RESERVED_PORT_REASON[action.port]
        elif kind is not GroupAction and kind not in _TRANSFORM_ACTIONS:
            return None, None, f"unsupported action {type(action).__name__}"
    return actions, next_table, None


def entry_fallback_reason(entry: "FlowEntry", table_id: int) -> Optional[str]:
    """Why *entry* compiles to a FALLBACK decision, or None.

    Intrinsic (key-independent) reasons only — a select-group bucket
    whose actions the executor cannot run is discovered per key during
    the chain walk instead.
    """
    actions, next_table, reason = _shape_of(entry)
    if reason is not None:
        return reason
    if next_table is not None:
        if next_table <= table_id:
            return "goto-table does not increase (interpreter raises)"
        if any(type(a) in _TRANSFORM_ACTIONS for a in actions):
            return "frame transform before goto-table"
    return None


_FALLBACK_PLAN = (PLAN_FALLBACK, None, None, 0.0, ())


def _mortals_of(entry: "FlowEntry") -> tuple:
    return (entry,) if (entry.idle_timeout or entry.hard_timeout) else ()


def _fast_plan(entry: "FlowEntry", actions: list, model: DatapathCostModel):
    """Key-independent plan for a terminal, group-free entry.

    The plan's cost constant is produced by the same ``cost_s`` call
    the interpreted path makes per packet (1 lookup, the entry's action
    and VLAN-op counts), so charging is float-identical.
    """
    steps = []
    vlan_ops = 0
    for action in actions:
        kind = type(action)
        if kind is OutputAction:
            steps.append((True, action.port))
        else:
            if kind is not SetFieldAction:
                vlan_ops += 1
            steps.append((False, action))
    cost = model.cost_s(lookups=1, actions=len(actions), vlan_ops=vlan_ops)
    mortals = _mortals_of(entry)
    if not steps:
        return (PLAN_NOOP, entry, None, cost, mortals)
    if len(steps) == 1 and steps[0][0]:
        return (PLAN_OUT, entry, steps[0][1], cost, mortals)
    return (PLAN_SEQ, entry, tuple(steps), cost, mortals)


def _compile_bucket(bucket) -> "tuple | None":
    """Bucket actions -> (steps, action count, vlan ops), or None.

    Bucket transforms apply to a bucket-local frame and are discarded
    afterwards (``_run_group`` ignores ``_apply_actions``'s return), so
    bucket steps never feed the outer step list's frame state.
    """
    steps = []
    vlan_ops = 0
    for action in bucket.actions:
        kind = type(action)
        if kind is OutputAction:
            if action.port in _RESERVED_PORTS:
                return None
            steps.append((STEP_OUT, action.port))
        elif kind in _TRANSFORM_ACTIONS:
            if kind is not SetFieldAction:
                vlan_ops += 1
            steps.append((STEP_XFORM, action))
        else:  # nested groups (and anything newer) stay interpreted
            return None
    return tuple(steps), len(bucket.actions), vlan_ops


def _build_decision(entry, shrunk_key, now, tables, groups, hash_fields,
                    model, used_slots, plans):
    """Decision for the table-0 winner *entry* under *shrunk_key*.

    Key-independent decisions (terminal group-free entries, intrinsic
    fallbacks) are memoised per entry in *plans*; chain and group
    decisions depend on the key (later-table lookups, select-bucket
    hashing) and are cached only in the program's key cache.
    """
    actions, next_table, reason = _shape_of(entry)
    if reason is not None:
        plans[id(entry)] = _FALLBACK_PLAN
        return _FALLBACK_PLAN
    if next_table is None and not any(type(a) is GroupAction for a in actions):
        plan = _fast_plan(entry, actions, model)
        plans[id(entry)] = plan
        return plan

    # Chain walk: rehydrate the shrunk key once; it covers every slot
    # any match in any table reads, so later-table lookups classify
    # exactly like the interpreter's full-key lookups.
    full_key = expand_key(used_slots, shrunk_key)
    touches = []
    steps: list = []
    mortals: list = []
    miss_table = None
    n_actions = 0
    vlan_ops = 0
    group_selections = 0
    transformed = False
    table_id = 0
    while True:
        touches.append((tables[table_id], entry))
        mortals.extend(_mortals_of(entry))
        for action in actions:
            kind = type(action)
            n_actions += 1
            if kind is OutputAction:
                steps.append((STEP_OUT, action.port))
            elif kind in _TRANSFORM_ACTIONS:
                if kind is not SetFieldAction:
                    vlan_ops += 1
                steps.append((STEP_XFORM, action))
                transformed = True
            else:  # GroupAction
                group = groups.get(action.group_id)
                if group is None:
                    steps.append((STEP_GROUP_DEAD, None))
                    continue
                if group.group_type == c.OFPGT_ALL:
                    buckets = []
                    for index, bucket in enumerate(group.buckets):
                        compiled = _compile_bucket(bucket)
                        if compiled is None:
                            return _FALLBACK_PLAN
                        bucket_steps, bucket_actions, bucket_vlans = compiled
                        n_actions += bucket_actions
                        vlan_ops += bucket_vlans
                        buckets.append((index, bucket_steps))
                    steps.append((STEP_GROUP_ALL, (group, tuple(buckets))))
                    continue
                group_selections += 1
                if group.group_type == c.OFPGT_SELECT:
                    if transformed:
                        # The interpreter hashes the transformed frame;
                        # our key describes the original one.
                        return _FALLBACK_PLAN
                    index = group.select_bucket_for_key(full_key, hash_fields)
                else:  # indirect
                    index = 0 if group.buckets else None
                if index is None:
                    steps.append((STEP_GROUP_ONE, (group, None, ())))
                    continue
                compiled = _compile_bucket(group.buckets[index])
                if compiled is None:
                    return _FALLBACK_PLAN
                bucket_steps, bucket_actions, bucket_vlans = compiled
                n_actions += bucket_actions
                vlan_ops += bucket_vlans
                steps.append((STEP_GROUP_ONE, (group, index, bucket_steps)))
        if next_table is None or next_table >= len(tables):
            break  # end of pipeline: walk complete (goto past the last
            # table ends the loop without a miss, like the interpreter)
        if next_table <= table_id or transformed:
            # Non-increasing goto raises in the interpreter; a transform
            # before a goto invalidates the baked key.  Both interpret.
            return _FALLBACK_PLAN
        table_id = next_table
        entry = tables[table_id]._classify(full_key, now)
        if entry is None:
            miss_table = tables[table_id]
            break
        actions, next_table, reason = _shape_of(entry)
        if reason is not None:
            return _FALLBACK_PLAN
    lookups = len(touches) + (1 if miss_table is not None else 0)
    cost = model.cost_s(
        lookups=lookups,
        actions=n_actions,
        vlan_ops=vlan_ops,
        group_selections=group_selections,
    )
    return (
        PLAN_CHAIN,
        tuple(touches),
        (tuple(steps), miss_table),
        cost,
        tuple(mortals),
    )


# ---------------------------------------------------------------------------
# Codegen
# ---------------------------------------------------------------------------


def _tuple_literal(parts: "list[str]") -> str:
    if not parts:
        return "()"
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


def _probe_block(
    lines: list[str],
    guard_priority: int,
    probe_index: int,
    value_expr: str,
    none_guards: "list[str]",
    mortal: bool,
) -> None:
    """One guarded min-compare probe.

    The guard only skips probes that provably cannot beat the current
    best (their max priority is below the best's priority); the winner
    is the global minimum of the arbitration sort key, a total order —
    which is why the blocks can be emitted in any order (profile-guided
    reordering is behaviour-preserving by construction).
    """
    lines.append(f"    if e is None or ek0 >= {-guard_priority}:")
    indent = "        "
    if none_guards:
        lines.append(indent + "if " + " and ".join(none_guards) + ":")
        indent += "    "
    lines.append(f"{indent}ch = P{probe_index}_get({value_expr})")
    lines.append(f"{indent}if ch:")
    if mortal:
        lines.append(f"{indent}    n = None")
        lines.append(f"{indent}    for cand in ch:")
        lines.append(f"{indent}        if not cand.is_expired(now):")
        lines.append(f"{indent}            n = cand")
        lines.append(f"{indent}            break")
        lines.append(f"{indent}    if n is not None:")
        indent += "    "
    else:
        lines.append(f"{indent}    n = ch[0]")
    lines.append(f"{indent}    nk = n.sort_key")
    lines.append(f"{indent}    if e is None or nk < ek:")
    lines.append(f"{indent}        e = n")
    lines.append(f"{indent}        ek = nk")
    lines.append(f"{indent}        ek0 = nk[0]")
    lines.append(f"{indent}        w = {probe_index}")


def compile_datapath(
    switch: "SoftSwitch", probe_order: "str | int" = "profile"
) -> Optional[CompiledProgram]:
    """Specialize *switch*'s installed pipeline, or None if ineligible.

    *probe_order* selects how table-0 probe blocks are ordered:
    ``"profile"`` (default) by observed hit counts, ``"priority"`` by
    descending max priority alone, or an int seed for a deterministic
    shuffle (test hook — order is behaviour-preserving, see
    :func:`_probe_block`).
    """
    model = switch.cost_model
    if type(model) is not DatapathCostModel:
        switch.compile_ineligible_reason = (
            "cost model is subclassed: per-packet cost hooks must run interpreted"
        )
        return None  # subclassed cost hooks must stay on the per-packet path
    tables = switch.tables
    if not tables:
        switch.compile_ineligible_reason = "switch has no tables"
        return None

    # One O(n) scan: mortality, and the first rule that will fall back.
    mortal = False
    fallback_reason = None
    for table in tables:
        for entry in table:
            if entry.idle_timeout or entry.hard_timeout:
                mortal = True
            if fallback_reason is None:
                reason = entry_fallback_reason(entry, table.table_id)
                if reason is not None:
                    fallback_reason = (
                        f"table {table.table_id} priority {entry.priority} "
                        f"[{entry.match}]: {reason}"
                    )
    switch.compile_ineligible_reason = fallback_reason

    used = set()
    for table in tables:
        used.update(table.used_slots())
    if switch.groups.has_select_groups():
        # Select-bucket choices are baked per key, so the key must
        # carry every hash-field slot the choice reads.
        used.update(FIELD_INDEX[name] for name in switch.select_hash_fields)
    used_slots = tuple(sorted(used))

    #: id(entry) -> key-independent plan, built lazily as the
    #: classifier selects entries.
    plans: dict[int, tuple] = {}
    miss_plan = (PLAN_MISS, None, None, model.cost_s(lookups=1, actions=0), ())
    key_cache: dict = {}
    frame_memo: dict = {}

    def _build(entry, shrunk_key, now, _tables=tables, _groups=switch.groups,
               _hash=switch.select_hash_fields, _model=model,
               _slots=used_slots, _plans=plans):
        return _build_decision(entry, shrunk_key, now, _tables, _groups,
                               _hash, _model, _slots, _plans)

    namespace: dict = dict(EXTRACTOR_GLOBALS)
    namespace.update(
        SIM=switch.sim,
        S=switch,
        T0=tables[0],
        PORTS=switch.ports,
        PORT=switch.port,
        EMIT=switch._emit,
        FALL=switch._interpret_one,
        SCHED=switch.sim.schedule_at,
        KC=key_cache,
        KC_get=key_cache.get,
        KC_LIMIT=KEY_CACHE_LIMIT,
        PLANS=plans,
        PLANS_get=plans.get,
        BUILD=_build,
        MISS=miss_plan,
        PMEMO=frame_memo,
        PMEMO_get=frame_memo.get,
        PMEMO_LIMIT=FRAME_MEMO_LIMIT,
    )

    # ---------------------------------------------------------- classify
    lines = ["def _classify(frame, in_port, now):"]
    lines.extend(partial_decode_source(used_slots, indent="    "))
    key_expr = _tuple_literal([f"v{slot}" for slot in used_slots])
    lines.append(f"    key = {key_expr}")
    lines.append("    plan = KC_get(key)")
    if mortal:
        lines.append("    if plan is not None:")
        lines.append("        for dead in plan[4]:")
        lines.append("            if dead.is_expired(now):")
        lines.append("                del KC[key]")
        lines.append("                plan = None")
        lines.append("                break")
        lines.append("        if plan is not None:")
        lines.append("            return plan, key")
    else:
        lines.append("    if plan is not None:")
        lines.append("        return plan, key")
    lines.append("    e = None")
    lines.append("    ek = None")
    lines.append("    ek0 = 1")
    lines.append("    w = 0")

    table0 = tables[0]
    probes: list[tuple] = []
    for probe_slots, buckets, max_priority, hit_cell in table0.exact_probe_groups():
        probes.append((hit_cell[0], max_priority, "exact", probe_slots,
                       buckets, hit_cell))
    for subtable in table0.subtables_in_order():
        probes.append((subtable.hit_cell[0], subtable.max_priority, "masked",
                       subtable.mask_set, subtable.buckets, subtable.hit_cell))
    if probe_order == "profile":
        # Stable sort: hottest probes first, max priority (the seed
        # heuristic) breaking ties for unproven probes.
        probes.sort(key=lambda item: -item[1])
        probes.sort(key=lambda item: -item[0])
    elif probe_order == "priority":
        probes.sort(key=lambda item: -item[1])
    else:
        Random(probe_order).shuffle(probes)
    hit_cells = []
    for index, (_, max_priority, tier, shape, buckets, hit_cell) in enumerate(probes):
        namespace[f"P{index}_get"] = buckets.get
        hit_cells.append(hit_cell)
        if tier == "exact":
            value_expr = _tuple_literal([f"v{slot}" for slot in shape])
            none_guards: list[str] = []
        else:
            value_expr = _tuple_literal(
                [f"v{slot} & {mask:#x}" for slot, mask in shape]
            )
            none_guards = [f"v{slot} is not None" for slot, _ in shape]
        _probe_block(lines, max_priority, index, value_expr, none_guards, mortal)
    namespace["HC"] = tuple(hit_cells)

    lines.append("    if e is None:")
    lines.append("        plan = MISS")
    lines.append("    else:")
    if probes:
        lines.append("        HC[w][0] += 1")
    lines.append("        plan = PLANS_get(id(e))")
    lines.append("        if plan is None:")
    lines.append("            plan = BUILD(e, key, now)")
    lines.append("    if len(KC) >= KC_LIMIT:")
    lines.append("        KC.clear()")
    lines.append("    KC[key] = plan")
    lines.append("    return plan, key")
    lines.append("")

    # Frame-memo mutation guards: a memoised decision is only replayed
    # while every frame attribute the shrunk key (or the wire length)
    # depends on is unchanged.  Payload identity and tag count are
    # always guarded (they feed L3/L4 fields and wire_length); the
    # other guards shrink with the used-slot set, like the extractor.
    # Mortal programs additionally revalidate the decision's entries.
    guards = ["m[3] is frame.payload", "m[4] == len(frame.tags)"]
    extras: list[tuple[str, str]] = []  # (store expr, guard template)
    slot_set = set(used_slots)
    if 0 in slot_set:
        extras.append(("in_port", "m[{i}] == in_port"))
    if 1 in slot_set:
        extras.append(("frame.dst", "m[{i}] is frame.dst"))
    if 2 in slot_set:
        extras.append(("frame.src", "m[{i}] is frame.src"))
    if 3 in slot_set or slot_set & set(range(6, 14)):
        extras.append(("frame.ethertype", "m[{i}] == frame.ethertype"))
    if slot_set & {4, 5}:
        extras.append(("frame.vlan", "m[{i}] is frame.vlan"))
    for index, (_, template) in enumerate(extras):
        guards.append(template.format(i=5 + index))
    if mortal:
        guards.append("_live(m[0], now)")
    store_parts = ["dec", "key", "frame", "frame.payload", "len(frame.tags)"]
    store_parts.extend(expr for expr, _ in extras)
    executor = _EXECUTOR_SOURCE.replace("__GUARDS__", " and ".join(guards))
    executor = executor.replace("__MEMO_ENTRY__", "(" + ", ".join(store_parts) + ")")
    lines.append(executor)

    source = "\n".join(lines)
    exec(compile(source, f"<specialized datapath {switch.name}>", "exec"), namespace)
    return CompiledProgram(
        run_one=namespace["run_one"],
        run_burst=namespace["run_burst"],
        classify=namespace["_classify"],
        source=source,
        used_slots=used_slots,
        key_cache=key_cache,
        plans=plans,
        mortal=mortal,
        fallback_reason=fallback_reason,
        probe_order=probe_order,
    )


#: The execution half of every generated module.  Static — only the
#: classifier and extractor vary per switch — but it lives inside the
#: generated module so the hot loop binds its constants (switch, table,
#: ports, scheduler) as default arguments, the fastest lookups Python
#: offers.  Charging mirrors ``SoftSwitch._charge`` exactly: start at
#: max(now, busy_until), advance by the decision's precomputed cost,
#: emit immediately when the finish time has not moved past ``now`` and
#: defer through the simulator otherwise.
_EXECUTOR_SOURCE = '''
def _live(dec, now):
    """False once any mortal entry a decision walked through expired."""
    for entry in dec[4]:
        if entry.is_expired(now):
            return False
    return True


def _chain_steps(steps, frame, PORTS=PORTS):
    """Execute a CHAIN plan's step list; returns (outputs, drops).

    Mirrors the interpreter exactly: outputs collect in action order
    (bucket outputs inline where their group action ran), transforms
    produce fresh frames (originals are never mutated), group counters
    bump where ``_run_group`` bumps them, and bucket transforms stay
    bucket-local.
    """
    outs = []
    dropped = 0
    current = frame
    for op, arg in steps:
        if op == 0:
            if arg in PORTS:
                outs.append((arg, current))
            else:
                dropped += 1
        elif op == 1:
            current = arg.apply(current)
        elif op == 3:
            group, index, bucket_steps = arg
            group.packet_count += 1
            if index is None:
                dropped += 1
                continue
            group.bucket_packet_counts[index] += 1
            bucket_frame = current
            for bucket_op, bucket_arg in bucket_steps:
                if bucket_op == 0:
                    if bucket_arg in PORTS:
                        outs.append((bucket_arg, bucket_frame))
                    else:
                        dropped += 1
                else:
                    bucket_frame = bucket_arg.apply(bucket_frame)
        elif op == 2:
            group, buckets = arg
            group.packet_count += 1
            counts = group.bucket_packet_counts
            for index, bucket_steps in buckets:
                counts[index] += 1
                bucket_frame = current
                for bucket_op, bucket_arg in bucket_steps:
                    if bucket_op == 0:
                        if bucket_arg in PORTS:
                            outs.append((bucket_arg, bucket_frame))
                        else:
                            dropped += 1
                    else:
                        bucket_frame = bucket_arg.apply(bucket_frame)
        else:  # op == 4: dead group reference
            dropped += 1
    return outs, dropped


def _lookup(frame, in_port, fid, now, PMEMO=PMEMO, PMEMO_get=PMEMO_get,
            PMEMO_LIMIT=PMEMO_LIMIT, classify=_classify):
    """dec for one frame object: guarded persistent memo over classify.

    The memo holds a strong reference to the frame, so the id key can
    never be reused while the entry lives; the guards re-validate every
    frame attribute the decision depends on (and, in mortal programs,
    the decision's entries' expiry), so even a caller mutating a frame
    between bursts gets a fresh classification.
    """
    m = PMEMO_get(fid)
    if m is not None and __GUARDS__:
        return m[0], m[1]
    plan, key = classify(frame, in_port, now)
    dec = plan + (frame.wire_length,)
    if len(PMEMO) >= PMEMO_LIMIT:
        PMEMO.clear()
    PMEMO[fid] = __MEMO_ENTRY__
    return dec, key


def run_one(frame, in_port, SIM=SIM, S=S, T0=T0, PORTS=PORTS,
            EMIT=EMIT, FALL=FALL, SCHED=SCHED, lookup=_lookup,
            chain_steps=_chain_steps):
    now = SIM.now
    dec, _key = lookup(frame, in_port, id(frame), now)
    kind = dec[0]
    if kind >= 4:
        if kind == 5:
            FALL(frame, in_port)  # interpreter does all of its own counting
            return
        _, touches, tail, cost, _mortals, length = dec
        steps, miss_table = tail
        for table, entry in touches:
            table.lookups += 1
            table.matches += 1
            entry.packet_count += 1
            entry.byte_count += length
            entry.last_used_at = now
        outs, chain_drops = chain_steps(steps, frame)
        if miss_table is not None:
            miss_table.lookups += 1
            chain_drops += 1
        if chain_drops:
            S.packets_dropped += chain_drops
        if not outs:
            outs = None
    else:
        T0.lookups += 1
        outs = None
        if kind == 0:
            _, entry, port, cost, _mortals, length = dec
            T0.matches += 1
            entry.packet_count += 1
            entry.byte_count += length
            entry.last_used_at = now
            if port in PORTS:
                outs = [(port, frame)]
            else:
                S.packets_dropped += 1
        elif kind == 1:
            cost = dec[3]
            S.packets_dropped += 1
        elif kind == 2:
            _, entry, _payload, cost, _mortals, length = dec
            T0.matches += 1
            entry.packet_count += 1
            entry.byte_count += length
            entry.last_used_at = now
        else:
            _, entry, steps, cost, _mortals, length = dec
            T0.matches += 1
            entry.packet_count += 1
            entry.byte_count += length
            entry.last_used_at = now
            current = frame
            outs = []
            for is_out, payload in steps:
                if is_out:
                    if payload in PORTS:
                        outs.append((payload, current))
                    else:
                        S.packets_dropped += 1
                else:
                    current = payload.apply(current)
            if not outs:
                outs = None
    busy = S.busy_until
    start = busy if busy > now else now
    finish = start + cost
    S.busy_until = finish
    S.specialized_frames += 1
    if outs is not None:
        if finish <= now:
            EMIT(outs, ())
        else:
            SCHED(finish, lambda o=outs: EMIT(o, ()))


def run_burst(in_port, frames, SIM=SIM, S=S, T0=T0, PORTS=PORTS,
              PORT=PORT, EMIT=EMIT, FALL=FALL, SCHED=SCHED,
              lookup=_lookup, chain_steps=_chain_steps):
    now = SIM.now
    memo = {}
    memo_get = memo.get
    uniq = set()
    uniq_add = uniq.add
    per_port = {}
    per_port_get = per_port.get
    forwarded = 0
    dropped = 0
    t0_lookups = 0
    t0_matches = 0
    specialized = 0
    busy = S.busy_until
    count = len(frames)
    index = 0
    while index < count:
        frame = frames[index]
        index += 1
        fid = id(frame)
        dec = memo_get(fid)
        if dec is None:
            dec, key = lookup(frame, in_port, fid, now)
            uniq_add(key)
            memo[fid] = dec
        kind = dec[0]
        if kind >= 4:
            if kind == 5:
                # Flush coalesced egress and sync the busy clock first:
                # the interpreted walk may hand a packet-in to a
                # synchronous controller, which must observe every
                # prior frame on the wire (the interpreted batch path
                # orders flushes the same way).
                if forwarded:
                    S.packets_forwarded += forwarded
                    for port_number, port_frames in per_port.items():
                        PORT(port_number).send_burst(port_frames)
                    per_port.clear()
                    forwarded = 0
                S.busy_until = busy
                FALL(frame, in_port)
                busy = S.busy_until
                if S._program is None:
                    # The interpreted walk mutated the pipeline (e.g. a
                    # reactive controller installed a flow): this
                    # program is stale, its baked structures may no
                    # longer describe the tables.  Drain the rest of
                    # the burst through the interpreter.
                    while index < count:
                        FALL(frames[index], in_port)
                        index += 1
                    busy = S.busy_until
                continue
            specialized += 1
            _, touches, tail, cost, _mortals, length = dec
            steps, miss_table = tail
            for table, entry in touches:
                table.lookups += 1
                table.matches += 1
                entry.packet_count += 1
                entry.byte_count += length
                entry.last_used_at = now
            outs, chain_drops = chain_steps(steps, frame)
            if miss_table is not None:
                miss_table.lookups += 1
                chain_drops += 1
            dropped += chain_drops
            start = busy if busy > now else now
            busy = start + cost
            if outs:
                if busy <= now:
                    for out_port, out_frame in outs:
                        chain = per_port_get(out_port)
                        if chain is None:
                            per_port[out_port] = [out_frame]
                        else:
                            chain.append(out_frame)
                    forwarded += len(outs)
                else:
                    SCHED(busy, lambda o=outs: EMIT(o, ()))
            continue
        specialized += 1
        t0_lookups += 1
        if kind == 0:
            _, entry, port, cost, _mortals, length = dec
            t0_matches += 1
            entry.packet_count += 1
            entry.byte_count += length
            entry.last_used_at = now
            start = busy if busy > now else now
            busy = start + cost
            if port in PORTS:
                if busy <= now:
                    chain = per_port_get(port)
                    if chain is None:
                        per_port[port] = [frame]
                    else:
                        chain.append(frame)
                    forwarded += 1
                else:
                    SCHED(busy, lambda o=[(port, frame)]: EMIT(o, ()))
            else:
                dropped += 1
        elif kind == 1:
            dropped += 1
            start = busy if busy > now else now
            busy = start + dec[3]
        elif kind == 2:
            _, entry, _payload, cost, _mortals, length = dec
            t0_matches += 1
            entry.packet_count += 1
            entry.byte_count += length
            entry.last_used_at = now
            start = busy if busy > now else now
            busy = start + cost
        else:
            _, entry, steps, cost, _mortals, length = dec
            t0_matches += 1
            entry.packet_count += 1
            entry.byte_count += length
            entry.last_used_at = now
            current = frame
            outs = []
            for is_out, payload in steps:
                if is_out:
                    if payload in PORTS:
                        outs.append((payload, current))
                    else:
                        dropped += 1
                else:
                    current = payload.apply(current)
            start = busy if busy > now else now
            busy = start + cost
            if outs:
                if busy <= now:
                    for out_port, out_frame in outs:
                        chain = per_port_get(out_port)
                        if chain is None:
                            per_port[out_port] = [out_frame]
                        else:
                            chain.append(out_frame)
                    forwarded += len(outs)
                else:
                    SCHED(busy, lambda o=outs: EMIT(o, ()))
    S.busy_until = busy
    T0.lookups += t0_lookups
    T0.matches += t0_matches
    if dropped:
        S.packets_dropped += dropped
    S.specialized_frames += specialized
    S.batch_bursts += 1
    S.batch_frames += count
    # Grouping statistic over *shrunk* keys — the keys this tier
    # actually distinguishes (the interpreted path counts full keys).
    S.batch_unique_keys += len(uniq)
    if forwarded:
        S.packets_forwarded += forwarded
        for port_number, port_frames in per_port.items():
            PORT(port_number).send_burst(port_frames)
'''
