"""Docs lint: every local markdown link must resolve.

Scans the repository's markdown files (root, docs/, benchmarks/) for
inline links and images, and fails if a link that points into the
repository targets a file or directory that does not exist.  External
links (http/https/mailto) and pure in-page anchors are skipped;
``path#anchor`` links are checked for the path part only.

Also checks the README's repo-layout table: every backticked path in a
table row (any token containing a ``/``) must exist in the repository,
so the table cannot drift as modules are added or renamed.

Run from the repository root (CI does)::

    python tools/docs_lint.py
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Where markdown worth checking lives (avoids vendored/venv noise).
MARKDOWN_GLOBS = ("*.md", "docs/*.md", "benchmarks/*.md", "examples/*.md")

#: Generated reference dumps (paper/snippet retrieval) — not repo docs.
EXCLUDE_NAMES = {"PAPERS.md", "SNIPPETS.md"}

#: Inline markdown links/images: [text](target) — target without spaces.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files():
    seen = set()
    for pattern in MARKDOWN_GLOBS:
        for path in sorted(REPO_ROOT.glob(pattern)):
            if path.name in EXCLUDE_NAMES:
                continue
            if path not in seen:
                seen.add(path)
                yield path


def check_file(path: pathlib.Path) -> "list[str]":
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        resolved = (path.parent / target_path).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            problems.append(f"{path.relative_to(REPO_ROOT)}: link escapes repo: {target}")
            continue
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(REPO_ROOT)}: broken link: {target}"
            )
    return problems


#: Backticked tokens inside markdown table rows.
TABLE_CODE_RE = re.compile(r"`([^`]+)`")


def check_repo_layout(readme: pathlib.Path) -> "list[str]":
    """Every backticked path in a README table row must exist.

    Only tokens containing ``/`` are treated as paths (plain file names
    like ``bench_cost.py`` and glob-ish shorthands are left alone).
    """
    problems = []
    for line in readme.read_text(encoding="utf-8").splitlines():
        if not line.lstrip().startswith("|"):
            continue
        for token in TABLE_CODE_RE.findall(line):
            if "/" not in token or any(ch in token for ch in "{*<| "):
                continue
            if not (REPO_ROOT / token.rstrip("/")).exists():
                problems.append(
                    f"{readme.relative_to(REPO_ROOT)}: "
                    f"layout table names missing path: {token}"
                )
    return problems


def main() -> int:
    files = list(iter_markdown_files())
    problems = []
    for path in files:
        problems.extend(check_file(path))
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        problems.extend(check_repo_layout(readme))
    print(f"docs-lint: checked {len(files)} markdown file(s)")
    if problems:
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        print(f"FAIL: {len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print("PASS: all local links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
