"""Use case (a): a web load balancer on a migrated legacy switch.

Eight clients send requests to a virtual IP; a select group on SS_2
spreads them over three backends by source IP, exactly as the paper's
demo ("equally distribute ingress web traffic between multiple
backends based on matching of the source IP address").

Run:  python examples/load_balancer.py
"""

from repro.apps import ArpResponderApp, Backend, LearningSwitchApp, LoadBalancerApp
from repro.controller import Controller
from repro.core import HarmlessManager
from repro.legacy import LegacySwitch
from repro.mgmt import DeviceConnection, get_network_driver
from repro.net import IPv4Address, MACAddress
from repro.netsim import Host, Link, Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib

NUM_CLIENTS = 8
NUM_BACKENDS = 3
VIP = IPv4Address("10.0.0.100")
VIP_MAC = MACAddress("02:00:00:00:0f:00")


def main() -> None:
    sim = Simulator()
    total_hosts = NUM_CLIENTS + NUM_BACKENDS
    legacy = LegacySwitch(sim, "rack-switch", num_ports=total_hosts + 1)

    hosts = []
    for index in range(total_hosts):
        host = Host(
            sim,
            f"client{index + 1}" if index < NUM_CLIENTS else f"web{index - NUM_CLIENTS + 1}",
            MACAddress(0x02_00_00_00_00_01 + index),
            IPv4Address(f"10.0.0.{index + 1}"),
        )
        Link(host.port0, legacy.port(index + 1))
        hosts.append(host)
    clients, backends = hosts[:NUM_CLIENTS], hosts[NUM_CLIENTS:]

    lb_backends = [
        Backend(ip=backend.ip, mac=backend.mac, port=NUM_CLIENTS + 1 + i)
        for i, backend in enumerate(backends)
    ]
    controller = Controller(sim)
    controller.add_app(ArpResponderApp(bindings={VIP: VIP_MAC}))
    controller.add_app(
        LoadBalancerApp(vip=VIP, vip_mac=VIP_MAC, backends=lb_backends)
    )
    controller.add_app(LearningSwitchApp())

    mib, _ = attach_bridge_mib(legacy)
    driver = get_network_driver("sim-eos")(
        DeviceConnection(agent=SnmpAgent(mib), hostname="rack-switch")
    )
    driver.open()
    manager = HarmlessManager(sim, controller=controller)
    deployment = manager.migrate(legacy, driver, trunk_port=total_hosts + 1)
    deployment.s4.ss2.select_hash_fields = ("ipv4_src",)  # paper: source-IP LB
    sim.run(until=0.1)

    for backend in backends:
        backend.serve_udp(80, lambda h, ip, sp, dp, pl: None)

    print(f"sending 5 requests from each of {NUM_CLIENTS} clients to VIP {VIP}\n")
    for client in clients:
        for burst in range(5):
            sim.schedule(
                0.02 * burst, lambda c=client: c.send_udp(VIP, 80, b"GET / HTTP/1.1")
            )
    sim.run(until=3.0)

    for backend in backends:
        sources = sorted({str(src) for src, *_ in backend.udp_received})
        print(
            f"{backend.name}: {len(backend.udp_received):2d} requests "
            f"from {len(sources)} client(s): {', '.join(sources)}"
        )
    group = deployment.s4.ss2.groups.get(1)
    print(f"\nselect-group bucket counters: {group.bucket_packet_counts}")
    print("(one client always lands on one backend: source-IP affinity)")


if __name__ == "__main__":
    main()
