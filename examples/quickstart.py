"""Quickstart: migrate a dumb legacy switch to OpenFlow in ~30 lines.

Builds three hosts on a legacy Ethernet switch, runs the HARMLESS
Manager against it (SNMP discovery -> VLAN config -> S4 -> controller),
and shows the hosts pinging under a plain OpenFlow learning switch —
the controller has no idea it is not driving real SDN hardware.

Run:  python examples/quickstart.py
"""

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.core import HarmlessManager
from repro.legacy import LegacySwitch
from repro.mgmt import DeviceConnection, get_network_driver
from repro.net import IPv4Address, MACAddress
from repro.netsim import Host, Link, Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib


def main() -> None:
    sim = Simulator()

    # --- the legacy island: a dumb switch with three hosts -------------
    legacy = LegacySwitch(sim, "office-switch", num_ports=8)
    hosts = []
    for index in range(3):
        host = Host(
            sim,
            f"pc{index + 1}",
            MACAddress(0x02_00_00_00_00_01 + index),
            IPv4Address(f"10.0.0.{index + 1}"),
        )
        Link(host.port0, legacy.port(index + 1))
        hosts.append(host)

    # --- management plane: SNMP agent + vendor driver ------------------
    mib, _ = attach_bridge_mib(legacy)
    driver = get_network_driver("sim-ios")(
        DeviceConnection(agent=SnmpAgent(mib), hostname="office-switch")
    )
    driver.open()

    # --- the SDN side: a stock learning-switch controller app ----------
    controller = Controller(sim)
    controller.add_app(LearningSwitchApp())

    # --- HARMLESS: one call migrates the switch ------------------------
    manager = HarmlessManager(sim, controller=controller)
    deployment = manager.migrate(legacy, driver, trunk_port=8)
    print(deployment.describe())
    print()
    for line in deployment.log:
        print(f"  manager: {line}")
    print()
    print("pushed vendor config:")
    print(deployment.vendor_config)

    # --- prove it works -------------------------------------------------
    sim.run(until=0.1)  # controller handshake
    hosts[0].ping(hosts[1].ip)
    hosts[2].ping(hosts[0].ip)
    sim.run(until=2.0)
    for host in hosts:
        rtts = ", ".join(f"{rtt * 1e6:.1f}us" for rtt in host.rtts())
        print(f"{host.name}: {len(host.rtts())} ping(s) answered [{rtts}]")

    problems = manager.verify_deployment(deployment)
    print(f"\ndeployment verification: {'OK' if not problems else problems}")


if __name__ == "__main__":
    main()
