"""Use case (b): DMZ — VM-level access policies in a multi-tenant cloud.

Four "VMs" on a migrated legacy switch; only vm1<->vm2 may talk (the
paper's worked example).  Then the policy is fine-tuned at runtime:
vm3 is granted access to vm1, and later revoked.

Run:  python examples/dmz_policy.py
"""

from repro.apps import DmzPolicyApp, Vm
from repro.controller import Controller
from repro.core import HarmlessManager
from repro.legacy import LegacySwitch
from repro.mgmt import DeviceConnection, get_network_driver
from repro.net import IPv4Address, MACAddress
from repro.netsim import Host, Link, Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib


def ping_report(tag, host, target):
    before = len(host.rtts())
    host.ping(target.ip)
    return tag, host, before


def main() -> None:
    sim = Simulator()
    legacy = LegacySwitch(sim, "cloud-edge", num_ports=5)
    hosts = []
    vms = []
    for index in range(4):
        host = Host(
            sim,
            f"vm{index + 1}",
            MACAddress(0x02_00_00_00_00_01 + index),
            IPv4Address(f"10.0.0.{index + 1}"),
        )
        Link(host.port0, legacy.port(index + 1))
        hosts.append(host)
        vms.append(
            Vm(name=host.name, ip=host.ip, mac=host.mac, port=index + 1)
        )

    dmz = DmzPolicyApp(vms=vms, allowed_pairs={("vm1", "vm2")})
    controller = Controller(sim)
    controller.add_app(dmz)

    mib, _ = attach_bridge_mib(legacy)
    driver = get_network_driver("sim-procurve")(
        DeviceConnection(agent=SnmpAgent(mib), hostname="cloud-edge")
    )
    driver.open()
    manager = HarmlessManager(sim, controller=controller)
    deployment = manager.migrate(legacy, driver, trunk_port=5)
    sim.run(until=0.1)
    datapath = deployment.datapath

    vm1, vm2, vm3, vm4 = hosts

    print("policy: only vm1 <-> vm2 allowed (default deny)\n")
    vm1.ping(vm2.ip)
    vm3.ping(vm1.ip)
    vm4.ping(vm2.ip)
    sim.run(until=2.0)
    print(f"vm1 -> vm2: {'OK' if len(vm1.rtts()) == 1 else 'BLOCKED'}")
    print(f"vm3 -> vm1: {'OK' if len(vm3.rtts()) == 1 else 'BLOCKED'}")
    print(f"vm4 -> vm2: {'OK' if len(vm4.rtts()) == 1 else 'BLOCKED'}")

    print("\nfine-tuning at runtime: allow vm1 <-> vm3")
    dmz.allow(datapath, "vm1", "vm3")
    sim.run(until=2.2)
    vm3.ping(vm1.ip)
    sim.run(until=4.0)
    print(f"vm3 -> vm1: {'OK' if len(vm3.rtts()) == 1 else 'BLOCKED'}")

    print("\nrevoking vm1 <-> vm3 again")
    dmz.revoke(datapath, "vm1", "vm3")
    sim.run(until=4.2)
    vm3.ping(vm1.ip)
    sim.run(until=6.5)
    print(f"vm3 -> vm1: {'OK' if len(vm3.rtts()) == 2 else 'BLOCKED'}")

    print("\nSS_2 flow table (the policy, as the controller installed it):")
    print(deployment.s4.ss2.tables[0].dump())


if __name__ == "__main__":
    main()
