"""Planning an enterprise-wide SDN migration (costs + downtime).

Compares flag-day, incremental-COTS and HARMLESS-waves strategies over
a 10-switch campus and prints the capex/downtime/coverage trade-off the
paper's introduction argues about.

Run:  python examples/migration_planning.py
"""

from repro.core import MigrationPlanner, SwitchSite
from repro.costmodel import CostModel


def main() -> None:
    sites = [
        SwitchSite(name=f"building-{chr(65 + i)}", ports=48 if i % 2 else 24,
                   ports_in_use=18 + 2 * i)
        for i in range(10)
    ]
    planner = MigrationPlanner(sites)
    plans = planner.compare_all(wave_size=3)

    print(f"campus: {len(sites)} edge switches, "
          f"{sum(s.ports_in_use for s in sites)} active ports\n")
    header = f"{'strategy':<18s} {'capex':>10s} {'total down':>11s} {'worst wave':>11s}"
    print(header)
    print("-" * len(header))
    for name, plan in plans.items():
        print(
            f"{name:<18s} ${plan.total_capex:9,.0f} "
            f"{plan.total_downtime_s:10.0f}s {plan.max_single_downtime_s:10.0f}s"
        )

    print("\nHARMLESS wave-by-wave detail:")
    print(plans["harmless-waves"].describe())

    print("\ncapex per SDN port at different scales (CostModel):")
    model = CostModel(legacy_owned=True, oversubscription=4.0)
    for ports in (24, 96, 384):
        comparison = model.compare(ports)
        print(
            f"  {ports:4d} ports: HARMLESS "
            f"${comparison['harmless'].per_port:7.1f}/port vs COTS "
            f"${comparison['cots-hardware'].per_port:7.1f}/port"
        )


if __name__ == "__main__":
    main()
