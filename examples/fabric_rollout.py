"""Network-wide HARMLESS rollout: migrate a whole fabric, wave by wave.

Builds a leaf-spine campus fabric (4 legacy edge switches x 2 hosts
behind 1 spine), plans a HARMLESS-waves migration over it, then
*executes* the plan mid-simulation: each wave migrates two switches
behind HARMLESS servers while the rest keep bridging, and an all-pairs
ping sweep after every wave proves the hybrid network never lost
connectivity.  At the end every frame between pods crosses three
software datapaths and the controller sees a 5-switch OpenFlow network
it believes is native SDN hardware.

Run:  python examples/fabric_rollout.py [--shards N]

With ``--shards N`` the same rollout runs on the sharded engine: the
fabric is partitioned at pod boundaries and executed as N parallel
per-shard event loops in forked worker processes, synchronised with
conservative lookahead (`repro.fabric.partition`).  The wave reports
and the reachability sweeps are identical to the single-process run —
sharding is pure implementation.
"""

import argparse

from repro.core import HarmlessFleet
from repro.fabric import leaf_spine_fabric


def main_sharded(shards: int) -> None:
    from repro.fabric import ShardedFabric

    def build(sim):
        return leaf_spine_fabric(edges=4, spines=2, hosts_per_edge=2, sim=sim)

    with ShardedFabric(build, shards=shards, backend="fork") as sharded:
        print(sharded.reference.describe())
        print()
        print(sharded.partition.describe())

        fleet = sharded.fleet(wave_size=2)
        print()
        baseline = fleet.verify_reachability()
        print(
            f"before any migration: reachability "
            f"{'OK' if baseline['ok'] else 'LOST'} "
            f"({baseline['answered']}/{baseline['pairs']} pairs)"
        )

        while not fleet.complete:
            report = fleet.migrate_next_wave(verify=True)
            reach = report["reachability"]
            print(
                f"wave {report['index']}: migrated {report['migrated']} "
                f"-> {report['sdn_ports_after']} SDN ports; reachability "
                f"{'OK' if reach['ok'] else 'LOST'} "
                f"({reach['answered']}/{reach['pairs']} pairs)"
            )

        stats = sharded.stats()
        print(
            f"\n{stats['shards']} shards ({stats['backend']} workers): "
            f"{stats['events_processed']} events, "
            f"{stats['sync_rounds']} sync rounds, "
            f"{stats['frames_exported']} boundary frames, "
            f"{stats['shadow_drops']} shadow drops"
        )


def main() -> None:
    # --- the legacy estate: 4 edge switches + 1 spine, 8 hosts ---------
    fabric = leaf_spine_fabric(edges=4, spines=1, hosts_per_edge=2)
    print(fabric.describe())

    # --- plan the rollout: waves of 2, edge tier first -----------------
    fleet = HarmlessFleet(fabric, wave_size=2)
    print()
    print(fleet.plan.describe())

    # --- baseline: the pure-legacy fabric is connected -----------------
    print()
    baseline = fleet.verify_reachability()
    print(f"before any migration: {baseline.describe()}")
    sample_host = fabric.hosts[0]
    legacy_rtt = sample_host.rtts()[-1] if sample_host.rtts() else None

    # --- execute: migrate wave by wave, verifying after each -----------
    while not fleet.complete:
        report = fleet.migrate_next_wave(verify=True)
        print(report.describe())
    print()
    print(fleet.describe())

    # --- read-back validation + datapath statistics --------------------
    problems = fleet.verify_deployments()
    print(f"\nper-site config read-back: {'OK' if not problems else problems}")

    print("\nmigrated datapaths (SS_2 microflow cache per hop):")
    for name, deployment in fleet.deployments.items():
        cache = deployment.s4.ss2.stats()["cache"]
        ss1 = deployment.s4.ss1.stats()["specialization"]
        print(
            f"  {name:<8s} dpid={deployment.datapath.dpid:#6x}  "
            f"cache hits {cache['hits']:>5} ({cache['hit_rate']:.0%})  "
            f"SS_1 compiled frames {ss1['specialized_frames']}"
        )

    if legacy_rtt is not None and sample_host.rtts():
        print(
            f"\n{sample_host.name} cross-pod RTT: {legacy_rtt * 1e6:.0f}us legacy"
            f" -> {sample_host.rtts()[-1] * 1e6:.0f}us via 3 migrated hops"
        )
    total_packet_ins = sum(
        getattr(app, "packet_ins_handled", 0) for app in fleet.controller.apps
    )
    print(f"controller packet-ins over the whole rollout: {total_packet_ins}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run the rollout on N parallel shard workers",
    )
    cli = parser.parse_args()
    if cli.shards is not None:
        main_sharded(cli.shards)
    else:
        main()
