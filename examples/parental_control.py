"""Use case (c): parental control — blocking web sites per user, live.

A kid's PC and a parent's PC share a migrated legacy switch with the
home DNS resolver.  The parental-control app intercepts DNS through
OpenFlow; blocking "games.example" for the kid refuses the lookup for
that user only, and the block can be lifted on the fly.

Run:  python examples/parental_control.py
"""

from repro.apps import LearningSwitchApp, ParentalControlApp
from repro.controller import Controller
from repro.core import HarmlessManager
from repro.legacy import LegacySwitch
from repro.mgmt import DeviceConnection, get_network_driver
from repro.net import IPv4Address, MACAddress
from repro.net.dns import DnsMessage, DnsResourceRecord
from repro.netsim import Host, Link, Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib

ZONE = {
    "school.example": IPv4Address("10.0.0.200"),
    "games.example": IPv4Address("10.0.0.201"),
}
RCODE_NAMES = {0: "NOERROR", 3: "NXDOMAIN", 5: "REFUSED"}


def main() -> None:
    sim = Simulator()
    legacy = LegacySwitch(sim, "home-switch", num_ports=4)
    kid = Host(sim, "kid-pc", MACAddress(0x02_00_00_00_00_01), IPv4Address("10.0.0.1"))
    parent = Host(sim, "parent-pc", MACAddress(0x02_00_00_00_00_02), IPv4Address("10.0.0.2"))
    resolver = Host(sim, "dns", MACAddress(0x02_00_00_00_00_03), IPv4Address("10.0.0.3"))
    for index, host in enumerate((kid, parent, resolver)):
        Link(host.port0, legacy.port(index + 1))

    def dns_server(host, src_ip, src_port, dst_port, payload):
        query = DnsMessage.from_bytes(payload)
        name = query.questions[0].name
        if name in ZONE:
            response = query.make_response(
                [DnsResourceRecord.a_record(name, ZONE[name])]
            )
        else:
            response = query.make_response(rcode=3)
        host.send_udp(src_ip, src_port, response.to_bytes(), src_port=53)

    resolver.serve_udp(53, dns_server)

    pc = ParentalControlApp()
    controller = Controller(sim)
    controller.add_app(pc)
    controller.add_app(LearningSwitchApp())

    mib, _ = attach_bridge_mib(legacy)
    driver = get_network_driver("sim-ios")(
        DeviceConnection(agent=SnmpAgent(mib), hostname="home-switch")
    )
    driver.open()
    HarmlessManager(sim, controller=controller).migrate(legacy, driver, trunk_port=4)
    sim.run(until=0.1)

    answers = []

    def lookup(host, name):
        def on_reply(h, src_ip, src_port, dst_port, payload):
            message = DnsMessage.from_bytes(payload)
            answers.append((host.name, name, message.rcode))

        host.serve_udp(5353, on_reply)
        host.send_udp(
            resolver.ip, 53, DnsMessage.query(len(answers) + 1, name).to_bytes(),
            src_port=5353,
        )

    def show_last():
        host_name, site, rcode = answers[-1]
        print(f"  {host_name:<10s} {site:<16s} -> {RCODE_NAMES.get(rcode, rcode)}")

    print("1) nothing blocked yet:")
    lookup(kid, "games.example")
    sim.run(until=1.0)
    show_last()

    print("\n2) parent blocks games.example for the kid (on the fly):")
    pc.block(kid.ip, "games.example")
    lookup(kid, "games.example")
    sim.run(until=2.0)
    show_last()
    lookup(parent, "games.example")
    sim.run(until=3.0)
    show_last()
    lookup(kid, "school.example")
    sim.run(until=4.0)
    show_last()

    print("\n3) and unblocks it again:")
    pc.unblock(kid.ip, "games.example")
    lookup(kid, "games.example")
    sim.run(until=5.0)
    show_last()

    print(
        f"\napp counters: {pc.queries_refused} refused, "
        f"{pc.queries_passed} passed"
    )


if __name__ == "__main__":
    main()
