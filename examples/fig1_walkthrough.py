"""The paper's Figure 1 walk-through: follow one packet hop by hop.

Host 1 pings Host 2 under a DMZ policy.  Captures on the trunk and the
access ports show the green dashed arrow of Fig. 1: tag 101 on ingress,
pop at SS_1, OF policy at SS_2, push 102 on the way back, untagged
delivery at Host 2.

Run:  python examples/fig1_walkthrough.py
"""

from repro.apps import DmzPolicyApp, Vm
from repro.controller import Controller
from repro.core import HarmlessManager
from repro.legacy import LegacySwitch
from repro.mgmt import DeviceConnection, get_network_driver
from repro.net import IPv4Address, MACAddress
from repro.netsim import Capture, Host, Link, Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib


def main() -> None:
    sim = Simulator()
    legacy = LegacySwitch(sim, "legacy", num_ports=5)
    hosts = []
    vms = []
    for index in range(2):
        host = Host(
            sim,
            f"host{index + 1}",
            MACAddress(0x02_00_00_00_00_01 + index),
            IPv4Address(f"10.0.0.{index + 1}"),
        )
        Link(host.port0, legacy.port(index + 1))
        hosts.append(host)
        vms.append(Vm(name=host.name, ip=host.ip, mac=host.mac, port=index + 1))

    controller = Controller(sim)
    controller.add_app(DmzPolicyApp(vms=vms, allowed_pairs={("host1", "host2")}))

    mib, _ = attach_bridge_mib(legacy)
    driver = get_network_driver("sim-ios")(
        DeviceConnection(agent=SnmpAgent(mib), hostname="legacy")
    )
    driver.open()
    manager = HarmlessManager(sim, controller=controller)
    deployment = manager.migrate(legacy, driver, trunk_port=5, access_ports=[1, 2])
    sim.run(until=0.1)

    trunk = Capture("trunk").attach(legacy.port(5))
    h2_wire = Capture("host2-wire").attach(hosts[1].port0)

    hosts[0].ping(hosts[1].ip)
    sim.run(until=1.0)

    print(deployment.s4.translator_rules.describe())
    print()
    print("trunk trace (every frame carries its access port's VLAN id):")
    print(trunk.format_trace())
    print()
    print("host2 access-port trace (tags already stripped):")
    print(h2_wire.format_trace())
    print()
    print(f"ping RTT: {hosts[0].rtts()[0] * 1e6:.1f}us — the hairpin works")


if __name__ == "__main__":
    main()
